"""The reservation ledger: pure resource accounting for one cluster.

ISSUE 9 splits the old monolithic ``Scheduler`` into two layers. This
module is the *mechanism* half — a :class:`ReservationLedger` that knows
how much of each node's CPU/memory/bandwidth is committed, which tenant
committed it, and what **elastic budget** each tenant has been granted
on top of its base reservations. It holds no policy: placement
strategies decide *where* reservations land, arbiters decide *how much*
each tenant may hold, and both act through the ledger's commit/release/
budget verbs. The :class:`~repro.tenancy.scheduler.Scheduler` remains
the decision layer composing the two.

Budgets are CPU-denominated: the scale plane's unit of actuation is one
worker replica, and a replica's memory/bandwidth footprint rides on the
channel accounting that already exists. A tenant's *share* of the
cluster is therefore ``base CPU (placed reservations) + budget (granted
headroom)``; :meth:`request_headroom` is the single gate the elastic
scale plane draws replicas through, and every grant or denial is
recorded per tenant so arbitration is auditable after the run.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.cluster.spec import ClusterSpec
from repro.errors import ConfigError, SimulationError
from repro.tenancy.tenant import ResourceDemand

_EPS = 1e-9

#: Axis names of the reservation vector, in ledger order.
AXES = ("cpu", "mem", "bandwidth")


class ReservationLedger:
    """Per-node committed-resource accounting plus per-tenant budgets.

    Engine-free and placement-free: every method is a pure function of
    the ledger state, so the property tests drive it without a DES run.
    A live :class:`~repro.tenancy.runtime.TenantRuntime` binds it to
    real :class:`~repro.cluster.node.Node` objects via :meth:`bind`,
    mirroring reservations into their ``commit``/``uncommit`` counters
    for observability.
    """

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self._specs = {n.name: n for n in cluster.nodes}
        #: node -> [cpu, mem_bytes, bandwidth_bps] currently reserved.
        self.committed: Dict[str, List[float]] = {
            n.name: [0.0, 0.0, 0.0] for n in cluster.nodes
        }
        #: tenant -> [cpu, mem_bytes, bandwidth_bps] across all nodes
        #: (base reservations plus granted headroom draws).
        self.tenant_committed: Dict[str, List[float]] = {}
        #: tenant -> granted elastic CPU budget (arbiter-set allowance).
        self.budgets: Dict[str, float] = {}
        #: tenant -> CPU currently drawn from the budget by live replicas.
        self.budget_used: Dict[str, float] = {}
        #: tenant -> headroom requests granted / denied (audit trail).
        self.grants: Dict[str, int] = {}
        self.denials: Dict[str, int] = {}
        #: Live Node objects to mirror reservations into (optional).
        self._nodes = None

    # -- binding -----------------------------------------------------------
    def bind(self, nodes) -> "ReservationLedger":
        """Mirror present and future reservations into live nodes."""
        self._nodes = nodes
        for name, committed in self.committed.items():
            node = nodes.get(name)
            if node is not None and any(committed):
                node.commit(committed[0], committed[1], committed[2])
        return self

    # -- capacity queries --------------------------------------------------
    def capacity(self, name: str) -> Tuple[float, float, float]:
        spec = self._specs.get(name)
        if spec is None:
            raise ConfigError(f"no node named {name!r}")
        return spec.capacity_vector

    def available(self, name: str) -> Tuple[float, float, float]:
        """Uncommitted capacity of one node (ignores failure state)."""
        cap = self.capacity(name)
        committed = self.committed[name]
        return tuple(cap[i] - committed[i] for i in range(3))

    def utilization(self) -> Dict[str, Dict[str, float]]:
        """Per-node committed fraction on every axis (diagnostics).

        ``{node: {"cpu": f, "mem": f, "bandwidth": f}}`` — not CPU only;
        a memory- or bandwidth-bound fleet saturates those axes first
        and the fairness report should say so.
        """
        out: Dict[str, Dict[str, float]] = {}
        for name in self.committed:
            cap = self.capacity(name)
            committed = self.committed[name]
            out[name] = {
                axis: (committed[i] / cap[i] if cap[i] else 0.0)
                for i, axis in enumerate(AXES)
            }
        return out

    def free_cpu(self, exclude=()) -> float:
        """Aggregate uncommitted CPU across nodes (minus ``exclude``)."""
        return sum(
            self.available(name)[0] for name in self.committed
            if name not in exclude
        )

    # -- commit / release --------------------------------------------------
    def _tenant_vector(self, tenant: str) -> List[float]:
        vec = self.tenant_committed.get(tenant)
        if vec is None:
            vec = self.tenant_committed[tenant] = [0.0, 0.0, 0.0]
        return vec

    def commit(self, placement: Mapping[str, str],
               demands: Mapping[str, ResourceDemand],
               tenant: str = None) -> None:
        """Reserve each placed thread's demand on its node."""
        for thread, node in placement.items():
            vector = demands[thread].as_vector()
            committed = self.committed[node]
            cap = self.capacity(node)
            for i in range(3):
                if committed[i] + vector[i] > cap[i] + _EPS:
                    raise SimulationError(
                        f"over-commit on node {node!r} placing "
                        f"{thread!r}: axis {i} "
                        f"{committed[i] + vector[i]:.3f} > {cap[i]:.3f}"
                    )
                committed[i] += vector[i]
            if tenant is not None:
                owned = self._tenant_vector(tenant)
                for i in range(3):
                    owned[i] += vector[i]
            if self._nodes is not None:
                self._nodes[node].commit(vector[0], vector[1], vector[2])

    def release(self, placement: Mapping[str, str],
                demands: Mapping[str, ResourceDemand],
                tenant: str = None) -> None:
        """Return reservations made by :meth:`commit`."""
        for thread, node in placement.items():
            vector = demands[thread].as_vector()
            committed = self.committed[node]
            for i in range(3):
                if committed[i] - vector[i] < -_EPS:
                    raise SimulationError(
                        f"releasing more than committed on {node!r} "
                        f"for {thread!r}"
                    )
                committed[i] = max(0.0, committed[i] - vector[i])
            if tenant is not None and tenant in self.tenant_committed:
                owned = self.tenant_committed[tenant]
                for i in range(3):
                    owned[i] = max(0.0, owned[i] - vector[i])
            if self._nodes is not None:
                self._nodes[node].uncommit(vector[0], vector[1], vector[2])

    # -- elastic budgets (the arbiter's grant surface) ---------------------
    def budget(self, tenant: str) -> float:
        """The tenant's granted elastic CPU allowance (0 if ungranted)."""
        return self.budgets.get(tenant, 0.0)

    def used_budget(self, tenant: str) -> float:
        """CPU the tenant's live replicas currently draw from the budget."""
        return self.budget_used.get(tenant, 0.0)

    def set_budget(self, tenant: str, cpu: float) -> float:
        """Grant (or shrink) a tenant's elastic budget; returns the old one.

        The ledger only records the allowance — enforcing a shrink
        (retiring replicas already drawing past the new budget) is the
        runtime's job, because it needs to drain and kill threads.
        """
        if cpu < 0:
            raise ConfigError(
                f"budget must be non-negative, got {cpu} for {tenant!r}"
            )
        old = self.budgets.get(tenant, 0.0)
        self.budgets[tenant] = cpu
        return old

    def request_headroom(self, tenant: str, cpu: float, node: str) -> bool:
        """One scale-plane draw: ``cpu`` cores on ``node`` from the budget.

        Grants only when the tenant's budget covers the draw AND the
        node has uncommitted CPU; a grant commits the CPU on the node
        (mirrored into the live ledger) so arbiters and placements see
        elastic replicas as real load. Every outcome is counted.
        """
        if cpu < 0:
            raise ConfigError(f"headroom request must be >= 0, got {cpu}")
        used = self.budget_used.get(tenant, 0.0)
        fits_budget = used + cpu <= self.budgets.get(tenant, 0.0) + _EPS
        fits_node = self.available(node)[0] + _EPS >= cpu
        if not (fits_budget and fits_node):
            self.denials[tenant] = self.denials.get(tenant, 0) + 1
            return False
        self.committed[node][0] += cpu
        self._tenant_vector(tenant)[0] += cpu
        self.budget_used[tenant] = used + cpu
        self.grants[tenant] = self.grants.get(tenant, 0) + 1
        if self._nodes is not None:
            self._nodes[node].commit(cpu, 0, 0)
        return True

    def release_headroom(self, tenant: str, cpu: float, node: str) -> None:
        """Return a draw made by :meth:`request_headroom`."""
        used = self.budget_used.get(tenant, 0.0)
        if used - cpu < -_EPS:
            raise SimulationError(
                f"tenant {tenant!r}: releasing {cpu} headroom CPU with "
                f"only {used} drawn"
            )
        self.budget_used[tenant] = max(0.0, used - cpu)
        self.committed[node][0] = max(0.0, self.committed[node][0] - cpu)
        if tenant in self.tenant_committed:
            vec = self.tenant_committed[tenant]
            vec[0] = max(0.0, vec[0] - cpu)
        if self._nodes is not None:
            self._nodes[node].uncommit(cpu, 0, 0)

    def clear_tenant(self, tenant: str) -> None:
        """Drop a departed tenant's budget (grant/deny audit trail stays)."""
        self.budgets.pop(tenant, None)
        self.budget_used.pop(tenant, None)

    def audit(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant grant/denial/budget snapshot for reports."""
        tenants = set(self.grants) | set(self.denials) | set(self.budgets)
        return {
            t: {
                "budget": self.budgets.get(t, 0.0),
                "used": self.budget_used.get(t, 0.0),
                "grants": self.grants.get(t, 0),
                "denials": self.denials.get(t, 0),
            }
            for t in sorted(tenants)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        used = sum(c[0] for c in self.committed.values())
        total = sum(self.capacity(n)[0] for n in self.committed)
        return f"<ReservationLedger cpu {used:.1f}/{total:.1f}>"
