"""Cross-tenant fairness metrics: Jain's index and share reports.

Jain's fairness index over allocations ``x_1..x_n``:

``J = (sum x)^2 / (n * sum x^2)``

J is 1 when every tenant gets the same goodput, 1/n when one tenant
gets everything. The *weighted* variant normalizes each allocation by
the tenant's declared weight first, so a priority tenant legitimately
receiving twice the goodput of a weight-1 tenant still scores 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from repro.errors import ConfigError


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index; nan for no values, 1.0 for all-zero."""
    xs = [float(v) for v in values]
    if not xs:
        return float("nan")
    if any(x < 0 for x in xs):
        raise ConfigError("jain_index requires non-negative allocations")
    square_sum = sum(x * x for x in xs)
    if square_sum == 0.0:
        return 1.0
    total = sum(xs)
    return (total * total) / (len(xs) * square_sum)


def weighted_jain_index(values: Iterable[float],
                        weights: Iterable[float]) -> float:
    """Jain's index over weight-normalized allocations ``x_i / w_i``."""
    xs = list(values)
    ws = list(weights)
    if len(xs) != len(ws):
        raise ConfigError(
            f"got {len(xs)} allocations but {len(ws)} weights"
        )
    if any(w <= 0 for w in ws):
        raise ConfigError("weights must be positive")
    return jain_index(x / w for x, w in zip(xs, ws))


@dataclass
class FairnessReport:
    """Cross-tenant goodput fairness for one run."""

    #: tenant -> goodput (deliveries per resident second).
    goodput: Dict[str, float] = field(default_factory=dict)
    #: tenant -> declared fairness weight.
    weights: Dict[str, float] = field(default_factory=dict)
    jain: float = float("nan")
    weighted_jain: float = float("nan")
    #: node -> {"cpu": f, "mem": f, "bandwidth": f} committed fractions
    #: at end of run — all three axes, because a memory- or
    #: bandwidth-bound fleet saturates those first.
    utilization: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def shares(self) -> Dict[str, float]:
        """Each tenant's fraction of total goodput."""
        total = sum(self.goodput.values())
        if total <= 0:
            return {name: 0.0 for name in self.goodput}
        return {name: g / total for name, g in self.goodput.items()}

    def format(self) -> str:
        """Human-readable fairness table."""
        lines = [
            f"fairness: jain={self.jain:.3f} "
            f"weighted={self.weighted_jain:.3f} "
            f"({len(self.goodput)} tenants)"
        ]
        shares = self.shares
        width = max((len(n) for n in self.goodput), default=0)
        for name in sorted(self.goodput):
            lines.append(
                f"  {name:<{width}}  goodput={self.goodput[name]:8.3f}/s "
                f"share={shares[name]:6.1%} weight={self.weights[name]:g}"
            )
        if self.utilization:
            nwidth = max(len(n) for n in self.utilization)
            lines.append("utilization:")
            for node in sorted(self.utilization):
                axes = self.utilization[node]
                lines.append(
                    f"  {node:<{nwidth}}  " + " ".join(
                        f"{axis}={axes.get(axis, 0.0):6.1%}"
                        for axis in ("cpu", "mem", "bandwidth")
                    )
                )
        return "\n".join(lines)


def fairness_report(goodput: Mapping[str, float],
                    weights: Mapping[str, float],
                    utilization: Mapping[str, Mapping[str, float]] = None,
                    ) -> FairnessReport:
    """Build the report for admitted tenants' goodput.

    ``utilization`` is the scheduler's per-node, per-axis committed
    fractions (cpu *and* mem *and* bandwidth — the CPU-only report hid
    memory- and bandwidth-bound saturation).
    """
    names = sorted(goodput)
    ws = {name: float(weights.get(name, 1.0)) for name in names}
    return FairnessReport(
        goodput={name: float(goodput[name]) for name in names},
        weights=ws,
        jain=jain_index(goodput[name] for name in names),
        weighted_jain=weighted_jain_index(
            (goodput[name] for name in names),
            (ws[name] for name in names),
        ),
        utilization={n: dict(a) for n, a in (utilization or {}).items()},
    )
