"""Cross-tenant arbitration: continuous re-allocation of the cluster.

PR 8's scheduler only ever *packs*: once admitted, a tenant's
reservation is never revisited short of a crash, so a saturated cluster
stays misallocated while queued tenants starve and churn strands
capacity in fragments no multi-thread tenant can colocate into. An
:class:`Arbiter` closes that loop — a policy that periodically re-solves
the allocation on the DES clock and emits :class:`Decision`\\ s the
runtime executes:

* ``grow`` / ``shrink`` — revise a tenant's **elastic budget**, the
  CPU allowance (above its base reservations) that the scale plane's
  replica spawns draw from via
  :meth:`~repro.tenancy.ledger.ReservationLedger.request_headroom`;
* ``revoke`` — take a running tenant's reservation away entirely: its
  threads are torn down (buffers drained, reservations released) and
  the tenant re-queues, so a starved queued tenant can finally admit —
  weighted time-sharing of a scarce cluster;
* ``migrate`` — re-place a running tenant's threads (draining buffers
  and restarting them cold via the existing restart machinery), either
  to defragment stranded capacity or to move load off a hot node.

Built-in arbiters (see :func:`arbiters_help_text`):

* ``proportional`` — the weighted bi-criteria allocation of Benoit et
  al. (*Resource Allocation for Multiple Concurrent In-Network
  Stream-Processing Applications*): each active tenant is entitled to a
  weight-proportional share of cluster CPU, optionally biased toward
  tenants with standing backlog (the period/latency trade-off knob);
  budgets fill to the share, and tenants holding past their share are
  revoked when queued tenants starve.
* ``demand`` — the DRS-style estimator (Fu et al., *Dynamic Resource
  Scheduling for Real-Time Analytics over Fast Streams*): per-tenant
  offered load is estimated from *observed* arrival/service rates with
  the Erlang-C machinery reused from :mod:`repro.control.scale`, and
  budgets, revocations, and hot-node migrations follow measured demand
  rather than declared weights.
* ``null`` — never an opinion; installs no controller process (the
  differential baseline, same zero-cost idiom as ``null-scale``).

Arbiters are pure: ``decide(view)`` maps an :class:`ArbiterView`
snapshot to decisions with no runtime access, so unit tests drive them
with hand-built views. The :class:`ArbiterController` owns the DES
process, sensing, and actuation through the runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import ConfigError, unknown_name_error

_EPS = 1e-9

#: Decision kinds an arbiter may emit.
GROW = "grow"
SHRINK = "shrink"
REVOKE = "revoke"
MIGRATE = "migrate"
DECISION_KINDS = (GROW, SHRINK, REVOKE, MIGRATE)


@dataclass(frozen=True)
class Decision:
    """One arbitration act: what to do to which tenant, and why.

    ``cpu`` carries the *absolute* target budget for grow/shrink;
    ``exclude`` lists nodes a migration must avoid (empty = pure
    defragmentation through the placement strategy).
    """

    kind: str
    tenant: str
    cpu: float = 0.0
    exclude: Tuple[str, ...] = ()
    reason: str = ""

    def __post_init__(self) -> None:
        if self.kind not in DECISION_KINDS:
            raise ConfigError(
                f"unknown decision kind {self.kind!r}; "
                f"expected one of {DECISION_KINDS}"
            )


@dataclass(frozen=True)
class ArbiterConfig:
    """Declarative description of one run's arbitration stack.

    Attributes
    ----------
    policy:
        Registered arbiter name (``proportional`` / ``demand`` /
        ``null``).
    interval:
        Arbitration period in simulated seconds — one to two orders of
        magnitude above the ScalePolicy's, below tenant lifetimes.
    patience:
        Seconds a tenant must sit queued before revocations are
        considered on its behalf.
    min_residency:
        Running seconds a tenant is immune from revocation/migration
        after (re-)admission — the anti-thrash guard.
    target_utilization:
        The demand arbiter's per-core utilisation target (budgets are
        sized so observed load / granted CPU stays under it).
    latency_bias:
        The proportional arbiter's bi-criteria knob: 0 allocates purely
        by weight (throughput/period-fair); larger values shift share
        toward tenants with standing backlog (latency-biased).
    defrag:
        Emit defragmenting migrations when a queued tenant fits the
        cluster's aggregate free CPU but no single packing does.
    max_revocations:
        Revocations allowed per arbitration tick (blast-radius bound).
    name:
        Label for reports and registries.
    """

    policy: str = "proportional"
    interval: float = 1.0
    patience: float = 2.0
    min_residency: float = 3.0
    target_utilization: float = 0.7
    latency_bias: float = 0.0
    defrag: bool = True
    max_revocations: int = 1
    name: str = "proportional"

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigError(f"interval must be positive, got {self.interval}")
        if self.patience < 0:
            raise ConfigError(f"patience must be >= 0, got {self.patience}")
        if self.min_residency < 0:
            raise ConfigError(
                f"min_residency must be >= 0, got {self.min_residency}"
            )
        if not (0 < self.target_utilization < 1):
            raise ConfigError(
                f"target_utilization must be in (0, 1), got "
                f"{self.target_utilization}"
            )
        if self.latency_bias < 0:
            raise ConfigError(
                f"latency_bias must be >= 0, got {self.latency_bias}"
            )
        if self.max_revocations < 0:
            raise ConfigError(
                f"max_revocations must be >= 0, got {self.max_revocations}"
            )

    def with_(self, **changes) -> "ArbiterConfig":
        return replace(self, **changes)


# -- the snapshot arbiters decide over --------------------------------------


@dataclass(frozen=True)
class TenantView:
    """One tenant's arbitration-relevant state at snapshot time."""

    name: str
    state: str
    priority: int
    weight: float
    #: CPU of placed base reservations (0 while queued).
    base_cpu: float
    #: Total CPU the tenant would reserve if admitted (demand sum).
    demand_cpu: float
    #: Declared threads (base parallelism, before elastic replicas).
    n_threads: int
    #: Granted elastic budget and the CPU drawn from it.
    budget: float
    budget_used: float
    #: Nodes currently hosting at least one of the tenant's threads.
    nodes: Tuple[str, ...] = ()
    admitted_at: Optional[float] = None
    queued_since: Optional[float] = None
    #: Σ per-thread (iteration rate × service time) over the window —
    #: the tenant's *measured* CPU consumption in cores.
    observed_cpu: float = 0.0
    #: Source-side arrival rate (items/s) and mean service time (s),
    #: the λ and s of the queueing model; None until measured.
    arrival_rate: float = 0.0
    service_time: Optional[float] = None
    #: Items waiting in the tenant's buffers (backlog proxy).
    backlog: int = 0
    #: Live replicas beyond the base threads (headroom draws).
    extra_replicas: int = 0


@dataclass(frozen=True)
class ArbiterView:
    """The cluster snapshot one arbitration decision is made over."""

    now: float
    #: Total and free CPU over non-failed nodes.
    total_cpu: float
    free_cpu: float
    #: node -> CPU capacity / committed / observed load (cores).
    node_capacity: Dict[str, float] = field(default_factory=dict)
    node_committed: Dict[str, float] = field(default_factory=dict)
    node_observed: Dict[str, float] = field(default_factory=dict)
    tenants: Tuple[TenantView, ...] = ()

    def running(self) -> List[TenantView]:
        return [t for t in self.tenants if t.state == "running"]

    def queued(self) -> List[TenantView]:
        return [t for t in self.tenants if t.state == "queued"]


# -- shared planning helpers -------------------------------------------------


def plan_starvation_revocations(
    view: ArbiterView,
    config: ArbiterConfig,
    overage: Callable[[TenantView], float],
) -> List[Decision]:
    """Revoke over-share tenants so a starved queued tenant can admit.

    ``overage`` scores how far past its entitlement a running tenant
    holds (arbiter-specific: share-relative for ``proportional``,
    demand-relative for ``demand``). Victims are chosen lowest priority
    first, then largest overage, then longest-resident — so scarce
    capacity rotates. Revocations are only emitted when the freed CPU
    (plus what is already free) actually covers the starved tenant's
    demand; tearing a tenant down without unblocking anyone is pure
    churn.
    """
    if config.max_revocations <= 0:
        return []
    starved = [
        t for t in view.queued()
        if t.queued_since is not None
        and view.now - t.queued_since >= config.patience
    ]
    if not starved:
        return []
    starved.sort(key=lambda t: (-t.priority, t.queued_since))
    target = starved[0]
    need = target.demand_cpu - view.free_cpu
    if need <= _EPS:
        return []  # feasible on free CPU alone: fragmentation, not scarcity
    victims = [
        t for t in view.running()
        if t.priority <= target.priority
        and t.admitted_at is not None
        and view.now - t.admitted_at >= config.min_residency
        and overage(t) > _EPS
    ]
    victims.sort(key=lambda t: (t.priority, -overage(t), t.admitted_at))
    chosen: List[Decision] = []
    freed = 0.0
    for victim in victims:
        if len(chosen) >= config.max_revocations:
            break
        freed += victim.base_cpu + victim.budget_used
        chosen.append(Decision(
            REVOKE, victim.name,
            reason=(f"starved {target.name!r} (queued "
                    f"{view.now - target.queued_since:.1f}s, needs "
                    f"{target.demand_cpu:.2f} cpu); {victim.name!r} holds "
                    f"{victim.base_cpu + victim.budget_used:.2f} over share"),
        ))
        if freed >= need - _EPS:
            return chosen
    return []


def plan_defrag_migration(
    view: ArbiterView, config: ArbiterConfig,
) -> List[Decision]:
    """One consolidating migration when churn has stranded capacity.

    Trigger: some queued tenant's demand fits the cluster's *aggregate*
    free CPU, yet it is still queued — the free capacity is scattered
    in fragments the placement cannot colocate into. Re-placing the
    most-scattered small tenant through the packing strategy compacts
    the committed mass and coalesces the fragments.
    """
    if not config.defrag:
        return []
    stranded = [t for t in view.queued()
                if t.demand_cpu <= view.free_cpu + _EPS]
    if not stranded:
        return []
    movable = [
        t for t in view.running()
        if len(t.nodes) > 1
        and t.extra_replicas == 0
        and t.admitted_at is not None
        and view.now - t.admitted_at >= config.min_residency
    ]
    if not movable:
        return []
    # Most scattered first (nodes per unit of CPU), smallest CPU breaks
    # ties — cheap moves that free the most fragments.
    movable.sort(key=lambda t: (-len(t.nodes), t.base_cpu, t.name))
    victim = movable[0]
    return [Decision(
        MIGRATE, victim.name,
        reason=(f"defrag: {stranded[0].name!r} needs "
                f"{stranded[0].demand_cpu:.2f} cpu, {view.free_cpu:.2f} "
                f"free but fragmented; {victim.name!r} spans "
                f"{len(victim.nodes)} nodes"),
    )]


def _budget_decisions(view: ArbiterView, targets: Dict[str, float],
                      label: str) -> List[Decision]:
    """GROW/SHRINK decisions moving each tenant's budget to its target."""
    out: List[Decision] = []
    for tenant in view.running():
        target = max(0.0, targets.get(tenant.name, 0.0))
        if abs(target - tenant.budget) <= 1e-6:
            continue
        kind = GROW if target > tenant.budget else SHRINK
        out.append(Decision(
            kind, tenant.name, cpu=target,
            reason=f"{label}: budget {tenant.budget:.2f} -> {target:.2f}",
        ))
    return out


# -- arbiters ----------------------------------------------------------------


class Arbiter:
    """Decision interface: cluster view in, decisions out.

    Arbiters never touch the runtime; the controller executes their
    decisions and owns all side effects. ``reset`` forgets learned
    state (none for the built-ins, hooks for stateful customs).
    """

    name = "null"

    def decide(self, view: ArbiterView) -> List[Decision]:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget learned state (cold restart)."""


class NullArbiter(Arbiter):
    """Never an opinion — the arbitration differential baseline.

    A run configured with this arbiter installs no controller process
    at all, so it is bit-identical to ``arbiter=None``.
    """

    name = "null"

    def decide(self, view: ArbiterView) -> List[Decision]:
        return []


class ProportionalArbiter(Arbiter):
    """Weighted bi-criteria shares à la Benoit et al.

    Every *active* tenant (running or queued) is entitled to
    ``share_i = total_cpu · w_i / Σw``. Running tenants' elastic
    budgets fill up to the share (``budget = max(0, share − base)``);
    tenants holding base+drawn CPU past their share are revocation
    candidates when someone starves in the queue. ``latency_bias``
    is the period/latency trade-off: it inflates the effective weight
    of tenants with standing backlog relative to their throughput, so
    a latency-suffering tenant's share (and budget) grows at the
    expense of purely throughput-greedy ones.
    """

    name = "proportional"

    def __init__(self, config: ArbiterConfig) -> None:
        self.config = config

    def _shares(self, view: ArbiterView) -> Dict[str, float]:
        active = [t for t in view.tenants if t.state in ("running", "queued")]
        if not active:
            return {}
        bias = self.config.latency_bias
        weights = {}
        for t in active:
            w = t.weight
            if bias > 0 and t.state == "running":
                # Backlog normalized by base parallelism: a tenant whose
                # buffers hold one item per thread is mildly behind; ten
                # per thread is drowning.
                behind = t.backlog / max(1, t.n_threads)
                w *= 1.0 + bias * min(4.0, behind)
            weights[t.name] = w
        total_w = sum(weights.values())
        if total_w <= 0:
            return {}
        return {
            name: view.total_cpu * w / total_w
            for name, w in weights.items()
        }

    def decide(self, view: ArbiterView) -> List[Decision]:
        shares = self._shares(view)
        targets = {
            t.name: shares.get(t.name, 0.0) - t.base_cpu
            for t in view.running()
        }
        decisions = _budget_decisions(view, targets, "proportional")
        decisions += plan_starvation_revocations(
            view, self.config,
            overage=lambda t: (t.base_cpu + t.budget_used
                               - shares.get(t.name, 0.0)),
        )
        decisions += plan_defrag_migration(view, self.config)
        return decisions


class DemandArbiter(Arbiter):
    """DRS-style allocation from observed arrival/service rates.

    Each running tenant's demand is estimated from measurements, not
    declarations: with λ (arrival rate) and s (mean service time)
    observed, the Erlang machinery from :mod:`repro.control.scale`
    sizes the server count that keeps utilisation under target
    (:func:`~repro.control.scale.required_replicas`), converted to CPU
    via the tenant's mean per-thread reservation; without measurements
    yet, the observed CPU consumption over the window is inflated to
    the target instead. Budgets follow the estimate; revocation
    victims are the tenants whose *measured* hold exceeds an equal
    split; and a node observably hotter than its core count triggers a
    migration of its smallest resident tenant to the rest of the
    cluster.
    """

    name = "demand"

    #: Observed node load must exceed capacity by this factor before a
    #: re-balance migration fires (measurement noise guard).
    HOT_NODE_FACTOR = 1.25

    def __init__(self, config: ArbiterConfig) -> None:
        self.config = config

    def _estimate(self, t: TenantView) -> float:
        """Estimated CPU the tenant needs to hold target utilisation."""
        from repro.control.scale import required_replicas

        cfg = self.config
        if (t.arrival_rate > 0 and t.service_time is not None
                and t.service_time > 0 and t.n_threads > 0):
            servers = required_replicas(
                t.arrival_rate, t.service_time, cfg.target_utilization,
            )
            per_server = (t.demand_cpu / t.n_threads if t.n_threads else 0.0)
            return servers * per_server
        return t.observed_cpu / cfg.target_utilization

    def decide(self, view: ArbiterView) -> List[Decision]:
        estimates = {t.name: self._estimate(t) for t in view.running()}
        targets = {
            t.name: estimates[t.name] - t.base_cpu
            for t in view.running()
        }
        decisions = _budget_decisions(view, targets, "demand")
        active = [t for t in view.tenants
                  if t.state in ("running", "queued")]
        fair = view.total_cpu / len(active) if active else 0.0
        decisions += plan_starvation_revocations(
            view, self.config,
            overage=lambda t: max(
                t.base_cpu + t.budget_used - fair,
                estimates.get(t.name, 0.0) - fair,
            ),
        )
        decisions += self._rebalance(view)
        decisions += plan_defrag_migration(view, self.config)
        return decisions

    def _rebalance(self, view: ArbiterView) -> List[Decision]:
        """Migrate the smallest tenant off an observably hot node."""
        cfg = self.config
        hot = None
        worst = self.HOT_NODE_FACTOR
        for node, load in view.node_observed.items():
            capacity = view.node_capacity.get(node, 0.0)
            if capacity <= 0:
                continue
            ratio = load / capacity
            if ratio > worst:
                hot, worst = node, ratio
        if hot is None:
            return []
        spare = sum(
            max(0.0, view.node_capacity[n] - view.node_observed.get(n, 0.0))
            for n in view.node_capacity if n != hot
        )
        if spare <= _EPS:
            return []
        residents = [
            t for t in view.running()
            if hot in t.nodes
            and t.extra_replicas == 0
            and t.admitted_at is not None
            and view.now - t.admitted_at >= cfg.min_residency
        ]
        if not residents:
            return []
        residents.sort(key=lambda t: (t.observed_cpu, t.name))
        victim = residents[0]
        return [Decision(
            MIGRATE, victim.name, exclude=(hot,),
            reason=(f"re-balance: node {hot!r} observed at "
                    f"{worst:.2f}x capacity; moving {victim.name!r} "
                    f"({victim.observed_cpu:.2f} cpu observed)"),
        )]


# -- registry ----------------------------------------------------------------


class _Entry:
    __slots__ = ("factory", "help")

    def __init__(self, factory: Callable[[ArbiterConfig], Arbiter],
                 help: str) -> None:
        self.factory = factory
        self.help = help


_ARBITERS: Dict[str, _Entry] = {}


def register_arbiter(name: str,
                     factory: Callable[[ArbiterConfig], Arbiter],
                     help: str = "", replace: bool = False) -> None:
    """Register an arbiter under ``name``.

    ``factory(config)`` returns a fresh arbiter instance per run (the
    same one-instance-per-scheduler discipline as placements). Use
    ``replace=True`` to intentionally shadow a built-in.
    """
    if not name:
        raise ConfigError("arbiter name must be non-empty")
    if name in _ARBITERS and not replace:
        raise ConfigError(
            f"arbiter {name!r} is already registered "
            f"(pass replace=True to override)"
        )
    if not callable(factory):
        raise ConfigError(f"arbiter factory must be callable, got {factory!r}")
    _ARBITERS[name] = _Entry(factory, help)


def resolve_arbiter_config(value) -> Optional[ArbiterConfig]:
    """Normalize a TenancySpec ``arbiter`` value to a config (or None).

    Accepts None (arbitration off), a registered name, or an
    :class:`ArbiterConfig`; unknown names get the did-you-mean error.
    """
    if value is None:
        return None
    if isinstance(value, ArbiterConfig):
        if value.policy not in _ARBITERS:
            raise unknown_name_error("arbiter", value.policy, _ARBITERS)
        return value
    if isinstance(value, str):
        if value not in _ARBITERS:
            raise unknown_name_error("arbiter", value, _ARBITERS)
        return ArbiterConfig(policy=value, name=value)
    raise ConfigError(
        f"arbiter must be None, a registered name, or an ArbiterConfig; "
        f"got {value!r}"
    )


def build_arbiter(config: ArbiterConfig) -> Arbiter:
    """The arbiter instance for one run."""
    entry = _ARBITERS.get(config.policy)
    if entry is None:
        raise unknown_name_error("arbiter", config.policy, _ARBITERS)
    return entry.factory(config)


def available_arbiters() -> List[str]:
    """Registered arbiter names, sorted."""
    return sorted(_ARBITERS)


def arbiters_help_text() -> str:
    """The ``--list-arbiters`` catalog."""
    names = available_arbiters()
    width = max(len(n) for n in names) if names else 0
    lines = ["registered arbiters:"]
    for name in names:
        lines.append(f"  {name:<{width}}  {_ARBITERS[name].help}")
    return "\n".join(lines)


register_arbiter(
    "proportional", ProportionalArbiter,
    help="weighted bi-criteria shares (Benoit et al.): budgets fill to "
         "weight-proportional entitlements, over-share tenants revoked "
         "when the queue starves",
)
register_arbiter(
    "demand", DemandArbiter,
    help="DRS-style observed-demand allocation (Fu et al.): Erlang-C "
         "estimates size budgets, hot nodes shed their smallest tenant",
)
register_arbiter(
    "null", lambda config: NullArbiter(),
    help="never an opinion; installs no controller (differential "
         "baseline)",
)


# -- controller --------------------------------------------------------------


class ArbiterController:
    """One DES process re-solving the cluster allocation periodically.

    Each tick: snapshot an :class:`ArbiterView` (per-tenant observed
    rates from the drivers' STP meters, per-node observed load, ledger
    budgets), ask the arbiter for decisions, execute them through the
    runtime (budget set + shrink enforcement, revocation, migration),
    then retry the admission queue — a revocation's whole point is that
    someone queued can now admit.
    """

    def __init__(self, runtime, config: ArbiterConfig) -> None:
        self.runtime = runtime
        self.config = config
        self.arbiter = build_arbiter(config)
        #: ``(t, kind, tenant, detail)`` rows, every executed decision.
        self.actions: List[Tuple[float, str, str, str]] = []
        self.revocations = 0
        self.migrations = 0
        self.grows = 0
        self.shrinks = 0
        self.ticks = 0
        #: thread -> iteration count at the previous snapshot.
        self._prev_iters: Dict[str, int] = {}
        self._prev_t = runtime.engine.now

    # -- DES surface --------------------------------------------------------
    def run(self) -> Generator:
        """The controller's DES process body."""
        engine = self.runtime.engine
        while True:
            yield engine.timeout(self.config.interval)
            self.step()

    # -- sensing ------------------------------------------------------------
    def _thread_rates(self, dt: float):
        """Per-thread (rate, stp) over the window; updates prev counters."""
        rates: Dict[str, Tuple[float, Optional[float]]] = {}
        for name, driver in self.runtime.drivers.items():
            iters = driver.iterations
            prev = self._prev_iters.get(name, 0)
            self._prev_iters[name] = iters
            rate = (iters - prev) / dt if dt > 0 else 0.0
            rates[name] = (rate, driver.meter.current_stp)
        return rates

    def snapshot(self) -> ArbiterView:
        """Build the cluster view for one arbitration decision."""
        runtime = self.runtime
        scheduler = runtime.scheduler
        ledger = scheduler.ledger
        now = runtime.engine.now
        dt = now - self._prev_t
        self._prev_t = now
        rates = self._thread_rates(dt)

        node_capacity = {
            name: scheduler.capacity(name)[0]
            for name in ledger.committed if name not in scheduler.failed
        }
        node_committed = {
            name: ledger.committed[name][0] for name in node_capacity
        }
        node_observed = {name: 0.0 for name in node_capacity}

        views = []
        for tenant in runtime.tenants.values():
            base_cpu = 0.0
            observed = 0.0
            stps: List[float] = []
            arrival = 0.0
            backlog = 0
            nodes = set()
            extra = 0
            if tenant.state == "running":
                for local, node in tenant.placement_local.items():
                    base_cpu += tenant.demands[local].cpu
                    nodes.add(node)
                threads = list(tenant.threads)
                for stage in tenant.stages:
                    for name in runtime.graph.replicas_of(stage):
                        if name not in tenant.threads:
                            threads.append(name)
                            extra += 1
                for name in threads:
                    pair = rates.get(name)
                    if pair is None:
                        continue
                    rate, stp = pair
                    if stp is not None and stp > 0:
                        observed += rate * stp
                        stps.append(stp)
                    if (tenant.graph is not None
                            and runtime.graph.is_source(name)):
                        arrival += rate
                for name in tenant.buffers:
                    buf = runtime.buffers.get(name)
                    if buf is not None:
                        backlog += len(buf)
                for name, node in tenant.placement.items():
                    pair = rates.get(name)
                    if pair is not None and node in node_observed:
                        rate, stp = pair
                        if stp is not None and stp > 0:
                            node_observed[node] += rate * stp
            demand_cpu = sum(d.cpu for d in tenant.demands.values()) \
                if tenant.demands else tenant.spec.demand.cpu
            views.append(TenantView(
                name=tenant.name,
                state=tenant.state,
                priority=tenant.priority,
                weight=tenant.weight,
                base_cpu=base_cpu,
                demand_cpu=demand_cpu,
                n_threads=len(tenant.threads) or 1,
                budget=ledger.budget(tenant.name),
                budget_used=ledger.used_budget(tenant.name),
                nodes=tuple(sorted(nodes)),
                admitted_at=tenant.admitted_at,
                queued_since=tenant.queued_at,
                observed_cpu=observed,
                arrival_rate=arrival,
                service_time=sum(stps) / len(stps) if stps else None,
                backlog=backlog,
                extra_replicas=extra,
            ))

        total_cpu = sum(node_capacity.values())
        free_cpu = sum(
            max(0.0, node_capacity[n] - node_committed[n])
            for n in node_capacity
        )
        return ArbiterView(
            now=now,
            total_cpu=total_cpu,
            free_cpu=free_cpu,
            node_capacity=node_capacity,
            node_committed=node_committed,
            node_observed=node_observed,
            tenants=tuple(views),
        )

    # -- actuation ----------------------------------------------------------
    def step(self) -> int:
        """One arbitration tick; returns the number of decisions applied."""
        runtime = self.runtime
        self.ticks += 1
        view = self.snapshot()
        decisions = self.arbiter.decide(view) or []
        applied = 0
        freed = False
        for decision in decisions:
            tenant = runtime.tenants.get(decision.tenant)
            if tenant is None:
                continue
            if decision.kind in (GROW, SHRINK):
                if tenant.state != "running":
                    continue
                old = runtime.set_tenant_budget(tenant, decision.cpu)
                if abs(old - decision.cpu) <= 1e-9:
                    continue
                if decision.kind == GROW:
                    self.grows += 1
                else:
                    self.shrinks += 1
            elif decision.kind == REVOKE:
                if tenant.state != "running":
                    continue
                runtime.revoke_tenant(tenant, reason=decision.reason)
                self.revocations += 1
                freed = True
            elif decision.kind == MIGRATE:
                if tenant.state != "running":
                    continue
                if not runtime.migrate_tenant(
                    tenant, exclude=decision.exclude,
                    reason=decision.reason,
                ):
                    continue
                self.migrations += 1
                freed = True
            applied += 1
            self.actions.append(
                (view.now, decision.kind, decision.tenant, decision.reason)
            )
            if runtime.obs.enabled:
                runtime.obs.on_arbiter(decision.kind, decision.tenant,
                                       view.now, detail=decision.reason)
        if freed:
            runtime.retry_queued()
        return applied

    def summary(self) -> Dict[str, object]:
        """End-of-run arbitration digest for :class:`TenancyResult`."""
        ledger = self.runtime.scheduler.ledger
        return {
            "arbiter": self.arbiter.name,
            "ticks": self.ticks,
            "revocations": self.revocations,
            "migrations": self.migrations,
            "grows": self.grows,
            "shrinks": self.shrinks,
            "grant_denials": sum(ledger.denials.values()),
            "grants": sum(ledger.grants.values()),
            "tenants": ledger.audit(),
            "actions": list(self.actions),
        }


def install_arbiter(runtime, config: ArbiterConfig
                    ) -> Optional[ArbiterController]:
    """Spawn the arbitration process on a runtime (None for null/off).

    The same zero-cost idiom as the scale plane: ``None`` configs and
    the ``null`` policy install nothing, so such runs stay bit-identical
    to PR 8 behaviour.
    """
    if config is None or config.policy == "null":
        return None
    controller = ArbiterController(runtime, config)
    runtime.arbiter = controller
    runtime.engine.process(controller.run(), name="tenancy.arbiter")
    return controller


# keep ruff happy about intentionally-unused math import in docstring math
_ = math.inf
