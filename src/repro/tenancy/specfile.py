"""Declarative tenancy specs: JSON-able dicts -> multi-tenant runs.

The CLI's ``repro tenants my-fleet.json`` grammar, mirroring
:mod:`repro.bench.specfile`: one dict describes the cluster, the
placement strategy, and the tenant population, e.g.:

.. code-block:: json

    {
      "cluster": {"nodes": 8, "ncpus": 16},
      "placement": "rstorm",
      "admission": "queue",
      "seed": 3,
      "horizon": 20.0,
      "tenants": [
        {"name": "cam", "count": 6, "app": "tracker",
         "demand": {"cpu": 0.5, "mem_mb": 64},
         "tracker": {"frame_period": 0.1}},
        {"name": "vip", "priority": 2, "weight": 2.0,
         "arrival": 5.0}
      ]
    }

A tenant entry with ``count: N`` expands to ``name-0 .. name-(N-1)``,
each deriving its own seed from the run seed — the fleet idiom. Unknown
keys fail loudly, as everywhere else in the spec grammar.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.apps.gesture import GestureConfig
from repro.apps.stereo import StereoConfig
from repro.apps.tracker import TrackerConfig
from repro.bench.specfile import _app_config, _check_keys, aru_from_dict
from repro.cluster.spec import ClusterSpec, heterogeneous_spec, uniform_spec
from repro.errors import ConfigError, unknown_name_error
from repro.tenancy.arbiter import ArbiterConfig, resolve_arbiter_config
from repro.tenancy.run import TenancySpec
from repro.tenancy.scheduler import resolve_admission
from repro.tenancy.tenant import ResourceDemand, TenantSpec

_TOP_KEYS = {"cluster", "placement", "admission", "arbiter", "gc", "seed",
             "horizon", "tenants", "faults", "telemetry"}

_ARBITER_KEYS = {"policy", "interval", "patience", "min_residency",
                 "target_utilization", "latency_bias", "defrag",
                 "max_revocations"}

_TENANT_KEYS = {"name", "count", "app", "policy", "scale_policy", "priority",
                "weight", "seed", "arrival", "departure", "demand",
                "thread_demands", "namespace", "tracker", "gesture", "stereo"}

_DEMAND_KEYS = {"cpu", "mem_bytes", "mem_mb", "bandwidth_bps", "bandwidth_mbps"}

_CLUSTER_KEYS = {"nodes", "ncpus", "mem_bytes", "bandwidth_bps",
                 "sched_noise_cv", "kind", "n_big", "n_small", "big_ncpus",
                 "small_ncpus"}

_APP_CONFIGS = {"tracker": TrackerConfig, "gesture": GestureConfig,
                "stereo": StereoConfig}


def demand_from_dict(spec: Any, where: str) -> ResourceDemand:
    """``{"cpu": .., "mem_mb": .., "bandwidth_mbps": ..}`` -> demand."""
    if isinstance(spec, ResourceDemand):
        return spec
    if not isinstance(spec, dict):
        raise ConfigError(f"{where} must be an object, got {spec!r}")
    spec = dict(spec)
    _check_keys(spec, _DEMAND_KEYS, where)
    if "mem_mb" in spec and "mem_bytes" in spec:
        raise ConfigError(f"{where}: give mem_mb or mem_bytes, not both")
    if "bandwidth_mbps" in spec and "bandwidth_bps" in spec:
        raise ConfigError(
            f"{where}: give bandwidth_mbps or bandwidth_bps, not both"
        )
    kwargs: Dict[str, Any] = {}
    if "cpu" in spec:
        kwargs["cpu"] = float(spec["cpu"])
    if "mem_bytes" in spec:
        kwargs["mem_bytes"] = int(spec["mem_bytes"])
    elif "mem_mb" in spec:
        kwargs["mem_bytes"] = int(float(spec["mem_mb"]) * 2**20)
    if "bandwidth_bps" in spec:
        kwargs["bandwidth_bps"] = int(spec["bandwidth_bps"])
    elif "bandwidth_mbps" in spec:
        kwargs["bandwidth_bps"] = int(float(spec["bandwidth_mbps"]) * 1e6)
    return ResourceDemand(**kwargs)


def cluster_from_dict(spec: Any) -> ClusterSpec:
    """``{"nodes": 8, ...}`` / ``{"kind": "heterogeneous", ...}`` -> spec."""
    if spec is None:
        return uniform_spec(4)
    if isinstance(spec, ClusterSpec):
        return spec
    if isinstance(spec, int):
        return uniform_spec(spec)
    if not isinstance(spec, dict):
        raise ConfigError(
            f"cluster must be an object, node count, or ClusterSpec; "
            f"got {spec!r}"
        )
    spec = dict(spec)
    _check_keys(spec, _CLUSTER_KEYS, "cluster")
    kind = spec.pop("kind", "uniform")
    if kind == "uniform":
        n = int(spec.pop("nodes", 4))
        for key in ("n_big", "n_small", "big_ncpus", "small_ncpus"):
            if key in spec:
                raise ConfigError(
                    f"cluster key {key!r} only applies to "
                    f"kind='heterogeneous'"
                )
        return uniform_spec(n, **spec)
    if kind == "heterogeneous":
        _check_keys(
            spec, {"n_big", "n_small", "big_ncpus", "small_ncpus",
                   "mem_bytes"},
            "cluster (kind='heterogeneous')",
        )
        return heterogeneous_spec(**spec)
    raise unknown_name_error(
        "cluster kind", kind, ("uniform", "heterogeneous")
    )


def arbiter_from_dict(spec: Any):
    """``None`` / ``"proportional"`` / ``{"policy": .., ...}`` -> config.

    Returns whatever :class:`~repro.tenancy.TenancySpec` accepts for its
    ``arbiter`` field; unknown policy names get the did-you-mean error.
    """
    if spec is None or isinstance(spec, (str, ArbiterConfig)):
        return resolve_arbiter_config(spec)
    if not isinstance(spec, dict):
        raise ConfigError(
            f"arbiter must be null, a name, or an object; got {spec!r}"
        )
    spec = dict(spec)
    _check_keys(spec, _ARBITER_KEYS, "arbiter")
    policy = spec.pop("policy", "proportional")
    kwargs: Dict[str, Any] = {"policy": policy, "name": policy}
    for key in ("interval", "patience", "min_residency",
                "target_utilization", "latency_bias"):
        if key in spec:
            kwargs[key] = float(spec.pop(key))
    if "defrag" in spec:
        kwargs["defrag"] = bool(spec.pop("defrag"))
    if "max_revocations" in spec:
        kwargs["max_revocations"] = int(spec.pop("max_revocations"))
    return resolve_arbiter_config(ArbiterConfig(**kwargs))


def _expand_tenant(raw: Dict[str, Any], index: int) -> List[TenantSpec]:
    where = f"tenants[{index}]"
    if not isinstance(raw, dict):
        raise ConfigError(f"{where} must be an object, got {raw!r}")
    raw = dict(raw)
    _check_keys(raw, _TENANT_KEYS, where)
    name = raw.pop("name", None)
    if not name:
        raise ConfigError(f"{where}: tenant name is required")
    count = int(raw.pop("count", 1))
    if count < 1:
        raise ConfigError(f"{where}: count must be >= 1, got {count}")

    app = raw.pop("app", "tracker")
    app_config = None
    for app_name, cls in _APP_CONFIGS.items():
        if app_name in raw:
            if app != app_name:
                raise ConfigError(
                    f"{where}: {app_name!r} config given but app is {app!r}"
                )
            app_config = _app_config(cls, raw.pop(app_name),
                                     f"{where}.{app_name}")
    kwargs: Dict[str, Any] = {"app": app, "app_config": app_config}
    if "policy" in raw:
        kwargs["policy"] = aru_from_dict(raw.pop("policy"))
    if "scale_policy" in raw:
        kwargs["scale_policy"] = raw.pop("scale_policy")
    if "demand" in raw:
        kwargs["demand"] = demand_from_dict(raw.pop("demand"),
                                            f"{where}.demand")
    if "thread_demands" in raw:
        overrides = raw.pop("thread_demands")
        if not isinstance(overrides, dict):
            raise ConfigError(f"{where}.thread_demands must be an object")
        kwargs["thread_demands"] = {
            thread: demand_from_dict(d, f"{where}.thread_demands[{thread!r}]")
            for thread, d in overrides.items()
        }
    for key in ("priority", "seed"):
        if key in raw:
            kwargs[key] = int(raw.pop(key))
    for key in ("weight", "arrival", "departure"):
        if key in raw:
            value = raw.pop(key)
            kwargs[key] = None if value is None else float(value)
    if "namespace" in raw:
        kwargs["namespace"] = raw.pop("namespace")

    if count == 1:
        return [TenantSpec(name=name, **kwargs)]
    if kwargs.get("namespace") == "":
        raise ConfigError(
            f"{where}: a blank namespace cannot expand (count={count})"
        )
    return [TenantSpec(name=f"{name}-{i}", **kwargs) for i in range(count)]


def tenancy_from_dict(spec: Dict[str, Any]) -> TenancySpec:
    """Build a :class:`~repro.tenancy.TenancySpec` from a plain dict."""
    if not isinstance(spec, dict):
        raise ConfigError("tenancy spec must be a dict")
    spec = dict(spec)
    _check_keys(spec, _TOP_KEYS, "tenancy spec")
    raw_tenants = spec.get("tenants")
    if not raw_tenants:
        raise ConfigError("tenancy spec needs a non-empty 'tenants' list")
    tenants: List[TenantSpec] = []
    for index, raw in enumerate(raw_tenants):
        tenants.extend(_expand_tenant(raw, index))

    faults: Tuple[Any, ...] = ()
    if spec.get("faults"):
        from repro.faults.spec import FaultSpec
        faults = tuple(
            FaultSpec.from_dict(f) if isinstance(f, dict) else f
            for f in spec["faults"]
        )
    return TenancySpec(
        tenants=tuple(tenants),
        cluster=cluster_from_dict(spec.get("cluster")),
        placement=spec.get("placement", "rstorm"),
        admission=resolve_admission(spec.get("admission", "queue")),
        arbiter=arbiter_from_dict(spec.get("arbiter")),
        gc=spec.get("gc", "dgc"),
        seed=int(spec.get("seed", 0)),
        horizon=float(spec.get("horizon", 30.0)),
        faults=faults,
        telemetry=spec.get("telemetry", False),
    )
