"""The shared multi-tenant runtime: one engine, many tenants.

:class:`TenantRuntime` extends :class:`~repro.runtime.Runtime` with the
tenancy lifecycle: tenants admit into (and depart from) one *shared*
task graph mid-run, every tenant's threads contending for the same
simulated nodes and links. The base runtime's per-thread resolution
hooks are overridden so each tenant gets:

* a **private control plane** — its own
  :class:`~repro.control.propagation.FeedbackBus` built from its own
  ARU config, so backwardSTP never crosses tenant boundaries;
* **private RNG streams** — a per-tenant
  :class:`~repro.sim.rng.RngRegistry` keyed by *local* thread names, so
  equal-seeded tenants of one app draw identical workloads regardless
  of admission order;
* **namespaced wiring** — graph nodes merge in as
  ``<tenant>/<local>``, while ``_conn_key`` maps buffers back to the
  local names the task bodies hard-code.

Zero-cost-abstraction contract: a run with one static tenant under the
empty namespace adds *no* engine processes and *no* RNG draws over the
equivalent single-tenant :class:`~repro.runtime.Runtime`, so its
metrics fingerprint is bit-identical (asserted by
``tests/tenancy/test_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.runtime.graph import TaskGraph
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.tenancy.scheduler import Scheduler
from repro.tenancy.tenant import (
    DEPARTED,
    EVICTED,
    QUEUED,
    REJECTED,
    RUNNING,
    Tenant,
)


class TenantRuntime(Runtime):
    """A :class:`Runtime` whose graph is populated by tenant admission."""

    def __init__(self, config: Optional[RuntimeConfig] = None,
                 scheduler: Optional[Scheduler] = None) -> None:
        if scheduler is None:
            scheduler = Scheduler((config or RuntimeConfig()).cluster)
        self.scheduler = scheduler
        #: Every tenant ever admitted (RUNNING/DEPARTED/EVICTED), by name.
        self.tenants: Dict[str, Tenant] = {}
        #: The at-most-one tenant running under the empty namespace.
        self._blank_tenant: Optional[str] = None
        #: Tenants waiting for capacity (``admission="queue"``).
        self.queued: List[Tenant] = []
        #: ``(t, tenant, decision, detail)`` admission history.
        self.admission_log: List[tuple] = []
        #: The installed :class:`~repro.tenancy.arbiter.ArbiterController`
        #: (None = arbitration off: scale-outs are not budget-gated and
        #: the run is event-for-event identical to the pack-only plane).
        self.arbiter = None
        #: replica thread -> (tenant, stage, cpu, node) for every live
        #: replica admitted through a ledger headroom grant.
        self._replica_grants: Dict[str, Tuple[str, str, float, str]] = {}
        self._pending_grant: Optional[Tuple[str, str, float, str]] = None
        super().__init__(TaskGraph(name="tenancy"), config)
        scheduler.bind(self.nodes)

    # -- hook overrides ------------------------------------------------------
    def _validate_graph(self) -> None:
        # The shared graph starts empty (tenants may all arrive late);
        # each tenant's private graph is validated at admission instead.
        pass

    def _owner_of(self, name: str) -> Optional[Tenant]:
        """The tenant owning a namespaced graph node (None if unowned)."""
        namespace, sep, _ = name.partition("/")
        if sep and namespace in self.tenants:
            return self.tenants[namespace]
        if self._blank_tenant is not None:
            return self.tenants[self._blank_tenant]
        return None

    def _aru_for(self, thread: str):
        tenant = self._owner_of(thread)
        return tenant.aru if tenant is not None else self.config.aru

    def _feedback_endpoint_for(self, buffer: str, compress_op):
        tenant = self._owner_of(buffer)
        if tenant is None:
            return super()._feedback_endpoint_for(buffer, compress_op)
        return tenant.bus(self.clock.now).endpoint_for(buffer, compress_op)

    def _task_rng(self, thread: str):
        tenant = self._owner_of(thread)
        if tenant is None:
            return super()._task_rng(thread)
        return tenant.rngs.stream(f"task.{tenant.local_name(thread)}")

    def _conn_key(self, thread: str, buffer: str) -> str:
        tenant = self._owner_of(thread)
        return tenant.local_name(buffer) if tenant is not None else buffer

    def _delivery_handle(self, thread: str):
        if not self.obs.enabled:
            return None
        tenant = self._owner_of(thread)
        if tenant is None or not self.graph.is_sink(thread):
            return None
        return self.obs.tenant_handle(tenant.name)

    def _scale_config_for(self, stage: str):
        tenant = self._owner_of(stage)
        return tenant.scale if tenant is not None else self.config.scale

    # -- scale-plane budget gate ---------------------------------------------
    def _admit_replica(self, stage: str, node_name: str) -> bool:
        """Node admission, plus a ledger budget draw when arbitrated.

        Without an arbiter the base R-Storm node check stands alone —
        bit-identical to the pack-only plane. With one, a scale-out must
        *also* draw the replica's CPU from the owning tenant's granted
        elastic budget (:meth:`Scheduler.request_headroom`); a tenant
        whose budget is exhausted gets its request denied — and counted
        — no matter how idle the node is. That is the whole point: free
        capacity belongs to whoever the arbiter granted it to.
        """
        if not super()._admit_replica(stage, node_name):
            return False
        if self.arbiter is None:
            return True
        tenant = self._owner_of(stage)
        if tenant is None:
            return True
        cpu = tenant.demand_for(tenant.local_name(stage)).cpu
        if not self.scheduler.request_headroom(tenant.name, cpu, node_name):
            if self.obs.enabled:
                self.obs.on_arbiter("deny", tenant.name, self.engine.now,
                                    detail=f"{stage} on {node_name}")
            return False
        if self.obs.enabled:
            self.obs.on_arbiter("grant", tenant.name, self.engine.now,
                                detail=f"{stage} on {node_name}")
        self._pending_grant = (tenant.name, stage, cpu, node_name)
        return True

    def _on_replica_spawned(self, stage: str, name: str,
                            node_name: str) -> None:
        grant = self._pending_grant
        self._pending_grant = None
        if grant is not None and grant[1] == stage:
            self._replica_grants[name] = grant

    def _on_replica_retired(self, stage: str, name: str) -> None:
        grant = self._replica_grants.pop(name, None)
        if grant is not None:
            tenant, _, cpu, node = grant
            self.scheduler.release_headroom(tenant, cpu, node)

    def set_tenant_budget(self, tenant: Tenant, cpu: float) -> float:
        """Set a tenant's elastic budget and enforce any shrink.

        Returns the previous budget. Enforcement is immediate: replicas
        drawing past the new allowance are retired (newest grant first)
        until the draw fits — the ledger records allowances, but only
        the runtime can drain and kill threads.
        """
        old = self.scheduler.set_budget(tenant.name, cpu)
        ledger = self.scheduler.ledger
        while ledger.used_budget(tenant.name) > cpu + 1e-9:
            victim = None
            for name, grant in reversed(list(self._replica_grants.items())):
                if grant[0] == tenant.name:
                    victim = (name, grant[1])
                    break
            if victim is None:
                break  # draws without live replicas: nothing to retire
            self.retire_replica(victim[1], victim[0], reason="budget shrink")
        return old

    # -- admission -----------------------------------------------------------
    def admit_tenant(self, tenant: Tenant) -> bool:
        """Place, reserve, and wire one tenant into the shared run.

        Returns False (with no side effects) when the scheduler finds
        no feasible placement; the caller decides queue-vs-reject.
        """
        now = self.engine.now
        if tenant.name in self.tenants and tenant.state == RUNNING:
            raise ConfigError(f"tenant {tenant.name!r} is already running")
        tenant.build(self.config.seed)
        if tenant.prefix == "" and self._blank_tenant not in (None, tenant.name):
            raise ConfigError(
                f"tenant {tenant.name!r}: only one blank-namespace tenant "
                f"per run (already: {self._blank_tenant!r})"
            )
        locals_ = tenant.graph.threads()
        placement_local = self.scheduler.admit(
            tenant.name, locals_, tenant.demands, tenant.neighbors()
        )
        if placement_local is None:
            return False

        readmission = bool(tenant.mapping)
        if not readmission:
            mapping = self.graph.merge(tenant.graph, prefix=tenant.prefix)
            tenant.mapping = mapping
            tenant.threads = tuple(mapping[t] for t in tenant.graph.threads())
            tenant.buffers = tuple(mapping[b] for b in tenant.graph.buffers())
            tenant.stages = tuple(
                f"{tenant.prefix}{s}" for s in tenant.graph.replicated_stages()
            )
        tenant.placement_local = dict(placement_local)
        tenant.placement = {
            tenant.mapping[t]: node for t, node in placement_local.items()
        }
        # Register the owner before wiring: every hook below resolves
        # through it (control plane, RNG, conn keys, delivery handles).
        self.tenants[tenant.name] = tenant
        if tenant.prefix == "":
            self._blank_tenant = tenant.name
        self.config.placement.update(tenant.placement)
        for stage in tenant.stages:
            spec = self.graph.stage_spec(stage)
            first = self.graph.replicas_of(stage)
            if first:
                self.config.placement[stage] = tenant.placement.get(
                    first[0], spec["node"]
                )
        self._thread_placement.update(tenant.placement)
        if not readmission:
            for name in tenant.buffers:
                self.buffers[name] = self._build_buffer(name)
        for name in tenant.threads:
            driver = self._build_driver(name)
            self.drivers[name] = driver
            self._processes[name] = self.engine.process(driver.run(), name=name)
        if not readmission:
            for stage in tenant.stages:
                spec = self.graph.stage_spec(stage)
                self.buffers[spec["input"]].bind_merge(
                    self.buffers[spec["output"]]
                )
        self._install_scale_controllers(tenant.stages)
        tenant.state = RUNNING
        tenant.admitted_at = now
        tenant.departed_at = None
        tenant.queued_at = None
        self.admission_log.append((now, tenant.name, "admitted", ""))
        if self.obs.enabled:
            self.obs.on_tenant("admitted", tenant.name, now)
        return True

    def arrive(self, tenant: Tenant) -> str:
        """Admission front door: admit, else queue or reject."""
        if self.admit_tenant(tenant):
            return "admitted"
        now = self.engine.now
        if self.scheduler.admission == "queue":
            tenant.state = QUEUED
            tenant.queued_at = now
            self.tenants.setdefault(tenant.name, tenant)
            self.queued.append(tenant)
            decision = "queued"
        else:
            tenant.state = REJECTED
            self.tenants.setdefault(tenant.name, tenant)
            decision = "rejected"
        self.admission_log.append((now, tenant.name, decision, ""))
        if self.obs.enabled:
            self.obs.on_tenant(decision, tenant.name, now)
        return decision

    def retry_queued(self) -> int:
        """Try admitting queued tenants (priority, then FIFO) after a
        departure freed capacity. Stops at the first still-infeasible
        tenant so a large high-priority tenant is never starved by
        smaller later arrivals. Returns the number admitted."""
        if not self.queued:
            return 0
        order = sorted(
            range(len(self.queued)),
            key=lambda i: (-self.queued[i].priority, i),
        )
        admitted = []
        for i in order:
            if self.admit_tenant(self.queued[i]):
                admitted.append(i)
            else:
                break
        for i in sorted(admitted, reverse=True):
            del self.queued[i]
        return len(admitted)

    # -- departure -----------------------------------------------------------
    def depart_tenant(self, tenant: Tenant, reason: str = "departure",
                      state: str = DEPARTED, release: bool = True,
                      phase: Optional[str] = None) -> None:
        """Tear one tenant down: kill threads, reclaim storage, release
        reservations. The tenant's graph nodes stay in the shared graph
        (dead), preserving trace attribution. ``phase`` overrides the
        logged transition (revocation departs to QUEUED as "revoked")."""
        if tenant.state != RUNNING:
            raise ConfigError(
                f"tenant {tenant.name!r} is {tenant.state}, not running"
            )
        now = self.engine.now
        for stage in tenant.stages:
            process = self._scaler_processes.pop(stage, None)
            if process is not None and process.is_alive:
                process.kill(reason)
            self.scalers.pop(stage, None)
        # Elastic replicas spawned after admission are not in
        # tenant.threads; retire them first so their connections,
        # processes, and any ledger headroom draws go with the tenant.
        for stage in tenant.stages:
            for name in list(self.graph.replicas_of(stage)):
                if name not in tenant.threads:
                    self.retire_replica(stage, name, reason=reason)
        for name in tenant.threads:
            process = self._processes.get(name)
            if process is not None and process.is_alive:
                process.kill(reason)
        for name in tenant.threads:
            old = self.drivers.pop(name, None)
            if old is None:
                continue
            for buffer, conn in old.in_conns.values():
                buffer.unregister_consumer(conn)
            for buffer, conn in old.out_conns.values():
                buffer.unregister_producer(conn)
            self._processes.pop(name, None)
            self._thread_placement.pop(name, None)
            self.config.placement.pop(name, None)
        for stage in tenant.stages:
            self.config.placement.pop(stage, None)
        for name in tenant.buffers:
            buffer = self.buffers.get(name)
            if buffer is not None:
                buffer.drain(now)
        if release:
            self.scheduler.release(tenant.placement_local, tenant.demands,
                                   tenant=tenant.name)
        self.scheduler.ledger.clear_tenant(tenant.name)
        if tenant.admitted_at is not None:
            tenant.prior_residence += max(0.0, now - tenant.admitted_at)
        tenant.state = state
        tenant.departed_at = now
        if phase is None:
            phase = "evicted" if state == EVICTED else "departed"
        self.admission_log.append((now, tenant.name, phase, reason))
        if self.obs.enabled:
            self.obs.on_tenant(phase, tenant.name, now, detail=reason)

    # -- arbitration surface --------------------------------------------------
    def revoke_tenant(self, tenant: Tenant, reason: str = "revoked") -> None:
        """Take a running tenant's reservation away and re-queue it.

        The full departure teardown runs — extra replicas retired,
        threads killed, buffers drained, reservations and budget
        released — but the tenant lands back in the admission queue
        instead of leaving: weighted time-sharing of a scarce cluster.
        Readmission later restarts it cold through the normal path.
        """
        self.depart_tenant(tenant, reason=reason, state=QUEUED,
                           phase="revoked")
        now = self.engine.now
        tenant.revocations += 1
        tenant.queued_at = now
        tenant.admitted_at = None
        self.queued.append(tenant)

    def migrate_tenant(self, tenant: Tenant, exclude=(),
                       reason: str = "migrate") -> bool:
        """Re-place a running tenant's threads through the scheduler.

        Releases the tenant's reservations, asks the placement strategy
        for a fresh packing over the surviving nodes minus ``exclude``,
        and — when the answer differs — moves the tenant there: buffers
        drained, every thread restarted cold (the crash-replace
        machinery's discipline: a migrated tenant restarts as a unit).
        Infeasible or unchanged placements re-commit the old one and
        return False; the cluster is left exactly as found.
        """
        if tenant.state != RUNNING:
            raise ConfigError(
                f"tenant {tenant.name!r} is {tenant.state}, not running"
            )
        if any(g[0] == tenant.name for g in self._replica_grants.values()):
            return False  # elastic replicas pin the current packing
        now = self.engine.now
        self.scheduler.release(tenant.placement_local, tenant.demands,
                               tenant=tenant.name)
        new_local = self.scheduler.admit(
            tenant.name, tenant.graph.threads(), tenant.demands,
            tenant.neighbors(), exclude=exclude,
        )
        if new_local is None or new_local == tenant.placement_local:
            if new_local is not None:
                self.scheduler.release(new_local, tenant.demands,
                                       tenant=tenant.name)
            self.scheduler.commit(tenant.placement_local, tenant.demands,
                                  tenant=tenant.name)
            return False
        for local, node in new_local.items():
            shared = tenant.mapping[local]
            tenant.placement_local[local] = node
            tenant.placement[shared] = node
            self._thread_placement[shared] = node
            self.config.placement[shared] = node
        for stage in tenant.stages:
            first = self.graph.replicas_of(stage)
            if first:
                self.config.placement[stage] = tenant.placement.get(
                    first[0], self.config.placement.get(stage)
                )
        for name in tenant.buffers:
            self.buffers[name].drain(now)
        for name in tenant.threads:
            self.restart_thread(name)
        tenant.migrations += 1
        detail = ",".join(
            f"{l}->{n}" for l, n in sorted(new_local.items())
        )
        tenant.detail = f"migrated: {detail}"
        self.admission_log.append((now, tenant.name, "migrated", detail))
        if self.obs.enabled:
            self.obs.on_tenant("migrated", tenant.name, now, detail=detail)
        return True

    # -- fault surface --------------------------------------------------------
    def crash_node(self, name: str, reason: str = "node crash") -> None:
        """Crash a node, then evict-and-re-place only its tenants.

        Each tenant with threads resident on the crashed node gets those
        threads re-placed by the scheduler over the surviving nodes
        (reservations move with them); when no feasible re-placement
        exists the whole tenant is evicted. Tenants elsewhere in the
        cluster are untouched — blast-radius containment is the point.
        """
        resident = list(self.threads_on(name))
        super().crash_node(name, reason)
        self.scheduler.mark_failed(name)
        by_tenant: Dict[str, List[str]] = {}
        for thread in resident:
            tenant = self._owner_of(thread)
            if tenant is not None and tenant.state == RUNNING:
                by_tenant.setdefault(tenant.name, []).append(thread)
        for tenant_name, threads in by_tenant.items():
            self._replace_tenant_threads(
                self.tenants[tenant_name], threads, crashed=name,
                reason=reason,
            )

    def _replace_tenant_threads(self, tenant: Tenant, threads: List[str],
                                crashed: str, reason: str) -> None:
        now = self.engine.now
        locals_ = [tenant.local_name(t) for t in threads]
        moved = {l: tenant.placement_local[l] for l in locals_}
        demands = {l: tenant.demands[l] for l in locals_}
        self.scheduler.release(moved, demands, tenant=tenant.name)
        new_local = self.scheduler.admit(
            tenant.name, locals_, demands, tenant.neighbors()
        )
        if new_local is None:
            # No feasible re-placement: evict. The moved threads'
            # reservations are already released; release the rest here.
            unaffected = {
                l: n for l, n in tenant.placement_local.items()
                if l not in moved
            }
            self.scheduler.release(
                unaffected, {l: tenant.demands[l] for l in unaffected},
                tenant=tenant.name,
            )
            self.depart_tenant(
                tenant, reason=f"evicted: {crashed} crashed",
                state=EVICTED, release=False,
            )
            tenant.detail = f"no feasible re-placement after {crashed}"
            return
        for local, node in new_local.items():
            shared = tenant.mapping[local]
            tenant.placement_local[local] = node
            tenant.placement[shared] = node
            self._thread_placement[shared] = node
            self.config.placement[shared] = node
        # The tenant restarts cold *as a unit*, like a supervisor
        # restarting a job: fresh generators reset timestamp counters,
        # so pre-crash items must not survive (a restarted producer
        # would collide with its own old timestamps) and threads that
        # escaped the crash must not keep cursors pointing past
        # everything the new incarnation will produce (a get-LATEST
        # consumer would wedge until the counter caught up).
        for name in tenant.buffers:
            self.buffers[name].drain(now)
        for name in tenant.threads:
            self.restart_thread(name)
        detail = ",".join(
            f"{l}->{n}" for l, n in sorted(new_local.items())
        )
        tenant.detail = f"re-placed off {crashed}: {detail}"
        self.admission_log.append((now, tenant.name, "replaced", detail))
        if self.fault_hook is not None:
            self.fault_hook("tenant_replaced", tenant.name, crashed)
        if self.obs.enabled:
            self.obs.on_tenant("replaced", tenant.name, now, detail=detail)

    def restart_node(self, name: str) -> None:
        """Recover a node: re-admit capacity, then retry the queue."""
        self.scheduler.mark_recovered(name)
        super().restart_node(name)
        self.retry_queued()
