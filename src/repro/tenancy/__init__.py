"""Multi-tenancy: many applications sharing one simulated cluster.

The tenancy layer turns the cluster into a shared substrate: a
:class:`Scheduler` with pluggable placement strategies admits
:class:`TenantSpec`-described applications into a single
:class:`~repro.tenancy.runtime.TenantRuntime` engine run — every tenant
contending for the same nodes and links, each with its own control
plane, RNG streams, and namespaced graph slice. :func:`run_tenants` is
the front door, mirroring :func:`repro.run_experiment`.

Timescale separation (docs/multi-tenancy.md): the **scheduler** decides
*where* threads run (arrival / departure / fault granularity); the
**arbiter** re-decides *how much* each tenant holds (every arbitration
period — budgets, revocations, migrations); **ARU** decides *how fast*
they consume (every iteration); **ScalePolicy** decides *how many*
replicas run (every control period, drawing from the arbiter's budget).
"""

from repro.tenancy.arbiter import (
    Arbiter,
    ArbiterConfig,
    ArbiterView,
    Decision,
    TenantView,
    arbiters_help_text,
    available_arbiters,
    register_arbiter,
    resolve_arbiter_config,
)
from repro.tenancy.fairness import (
    FairnessReport,
    fairness_report,
    jain_index,
    weighted_jain_index,
)
from repro.tenancy.placement import (
    PlacementView,
    available_placements,
    placements_help_text,
    register_placement,
    resolve_placement,
)
from repro.tenancy.run import (
    TenancyResult,
    TenancySpec,
    TenantRecord,
    churn,
    poisson_arrivals,
    run_tenants,
    scaled_tracker_config,
)
from repro.tenancy.ledger import ReservationLedger
from repro.tenancy.runtime import TenantRuntime
from repro.tenancy.scheduler import (
    ADMISSION_MODES,
    Scheduler,
    resolve_admission,
)
from repro.tenancy.specfile import tenancy_from_dict
from repro.tenancy.tenant import (
    TENANT_STATES,
    ResourceDemand,
    Tenant,
    TenantSpec,
)

__all__ = [
    "ADMISSION_MODES",
    "Arbiter",
    "ArbiterConfig",
    "ArbiterView",
    "Decision",
    "FairnessReport",
    "PlacementView",
    "ReservationLedger",
    "ResourceDemand",
    "Scheduler",
    "TENANT_STATES",
    "TenancyResult",
    "TenancySpec",
    "Tenant",
    "TenantRecord",
    "TenantRuntime",
    "TenantSpec",
    "TenantView",
    "arbiters_help_text",
    "available_arbiters",
    "available_placements",
    "churn",
    "fairness_report",
    "jain_index",
    "placements_help_text",
    "poisson_arrivals",
    "register_arbiter",
    "register_placement",
    "resolve_admission",
    "resolve_arbiter_config",
    "resolve_placement",
    "run_tenants",
    "scaled_tracker_config",
    "tenancy_from_dict",
    "weighted_jain_index",
]
