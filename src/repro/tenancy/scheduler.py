"""The cluster scheduler: admission control plus reservation accounting.

The :class:`Scheduler` owns the declarative side of multi-tenancy: a
per-node ledger of committed CPU/memory/bandwidth reservations packed
against each node's :attr:`~repro.cluster.spec.NodeSpec.capacity_vector`
by a pluggable placement strategy. It is deliberately engine-free —
admission decisions are pure functions of the ledger — so the property
tests exercise it without a DES run; a live
:class:`~repro.tenancy.runtime.TenantRuntime` binds it to real
:class:`~repro.cluster.node.Node` objects, mirroring every reservation
into their ``commit``/``uncommit`` accounting for observability.

Timescale separation (see docs/multi-tenancy.md): the scheduler decides
*where* threads run, at tenant arrival/departure/fault granularity; ARU
decides *how fast* they run, every iteration; ScalePolicy decides *how
many* replicas run, every control period.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.cluster.spec import ClusterSpec
from repro.errors import ConfigError, SimulationError
from repro.tenancy.placement import PlacementView, resolve_placement
from repro.tenancy.tenant import ResourceDemand

_EPS = 1e-9

#: Valid over-capacity behaviours.
ADMISSION_MODES = ("queue", "reject")


class Scheduler:
    """Resource-aware admission and placement over one cluster."""

    def __init__(self, cluster: ClusterSpec, placement="rstorm",
                 admission: str = "queue") -> None:
        if admission not in ADMISSION_MODES:
            raise ConfigError(
                f"admission must be one of {ADMISSION_MODES}, "
                f"got {admission!r}"
            )
        self.cluster = cluster
        self.strategy = resolve_placement(placement)
        self.admission = admission
        self._specs = {n.name: n for n in cluster.nodes}
        #: node -> [cpu, mem_bytes, bandwidth_bps] currently reserved.
        self.committed: Dict[str, List[float]] = {
            n.name: [0.0, 0.0, 0.0] for n in cluster.nodes
        }
        #: Nodes excluded from placement (crashed).
        self.failed: Set[str] = set()
        #: Live Node objects to mirror reservations into (optional).
        self._nodes = None

    def bind(self, nodes) -> "Scheduler":
        """Mirror present and future reservations into live nodes."""
        self._nodes = nodes
        for name, committed in self.committed.items():
            node = nodes.get(name)
            if node is not None and any(committed):
                node.commit(committed[0], committed[1], committed[2])
        return self

    # -- capacity queries --------------------------------------------------
    def capacity(self, name: str) -> Tuple[float, float, float]:
        spec = self._specs.get(name)
        if spec is None:
            raise ConfigError(f"no node named {name!r}")
        return spec.capacity_vector

    def available(self, name: str) -> Tuple[float, float, float]:
        """Uncommitted capacity of one node (ignores failure state)."""
        cap = self.capacity(name)
        committed = self.committed[name]
        return tuple(cap[i] - committed[i] for i in range(3))

    def utilization(self) -> Dict[str, float]:
        """Per-node committed-CPU fraction (diagnostics)."""
        out = {}
        for name in self.committed:
            cap = self.capacity(name)
            out[name] = self.committed[name][0] / cap[0] if cap[0] else 0.0
        return out

    # -- placement ---------------------------------------------------------
    def _view(self, neighbors: Optional[Mapping] = None) -> PlacementView:
        nodes = tuple(
            n.name for n in self.cluster.nodes if n.name not in self.failed
        )
        return PlacementView(
            nodes=nodes,
            capacity={n: self.capacity(n) for n in nodes},
            available={n: list(self.available(n)) for n in nodes},
            neighbors=neighbors or {},
        )

    def try_place(self, tenant: str, threads,
                  demands: Mapping[str, ResourceDemand],
                  neighbors: Optional[Mapping] = None
                  ) -> Optional[Dict[str, str]]:
        """A feasible thread->node map, or None — no ledger changes."""
        for thread in threads:
            if thread not in demands:
                raise ConfigError(
                    f"tenant {tenant!r}: no demand declared for "
                    f"thread {thread!r}"
                )
        return self.strategy.place(
            tenant, list(threads), demands, self._view(neighbors)
        )

    def admit(self, tenant: str, threads,
              demands: Mapping[str, ResourceDemand],
              neighbors: Optional[Mapping] = None
              ) -> Optional[Dict[str, str]]:
        """Place and commit in one step; None leaves the ledger untouched."""
        placement = self.try_place(tenant, threads, demands, neighbors)
        if placement is not None:
            self.commit(placement, demands)
        return placement

    # -- the reservation ledger --------------------------------------------
    def commit(self, placement: Mapping[str, str],
               demands: Mapping[str, ResourceDemand]) -> None:
        """Reserve each placed thread's demand on its node."""
        for thread, node in placement.items():
            vector = demands[thread].as_vector()
            committed = self.committed[node]
            cap = self.capacity(node)
            for i in range(3):
                if committed[i] + vector[i] > cap[i] + _EPS:
                    raise SimulationError(
                        f"over-commit on node {node!r} placing "
                        f"{thread!r}: axis {i} "
                        f"{committed[i] + vector[i]:.3f} > {cap[i]:.3f}"
                    )
                committed[i] += vector[i]
            if self._nodes is not None:
                self._nodes[node].commit(vector[0], vector[1], vector[2])

    def release(self, placement: Mapping[str, str],
                demands: Mapping[str, ResourceDemand]) -> None:
        """Return reservations made by :meth:`commit`."""
        for thread, node in placement.items():
            vector = demands[thread].as_vector()
            committed = self.committed[node]
            for i in range(3):
                if committed[i] - vector[i] < -_EPS:
                    raise SimulationError(
                        f"releasing more than committed on {node!r} "
                        f"for {thread!r}"
                    )
                committed[i] = max(0.0, committed[i] - vector[i])
            if self._nodes is not None:
                self._nodes[node].uncommit(vector[0], vector[1], vector[2])

    # -- fault surface -------------------------------------------------------
    def mark_failed(self, name: str) -> None:
        """Exclude a crashed node from future placement."""
        if name not in self._specs:
            raise ConfigError(f"no node named {name!r}")
        self.failed.add(name)

    def mark_recovered(self, name: str) -> None:
        self.failed.discard(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        used = sum(c[0] for c in self.committed.values())
        total = sum(self.capacity(n)[0] for n in self.committed)
        return (f"<Scheduler {self.strategy.name} "
                f"cpu {used:.1f}/{total:.1f} failed={sorted(self.failed)}>")
