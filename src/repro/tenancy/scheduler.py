"""The cluster scheduler: the tenancy resource plane's decision layer.

ISSUE 9 split the old monolithic scheduler in two. The *mechanism* —
per-node reservation accounting and per-tenant elastic budgets — lives
in :class:`~repro.tenancy.ledger.ReservationLedger`; this class is the
*decision* layer that composes a pluggable placement strategy (where do
a tenant's threads land?) with the ledger (what may they hold?). An
:class:`~repro.tenancy.arbiter.Arbiter`, when configured, revises those
decisions continuously: it reads the ledger, grants/shrinks budgets,
and asks the runtime to revoke or migrate reservations the placement
made earlier. The ledger's verbs are re-exposed here so existing
callers (and the property tests) keep one front door.

Timescale separation (see docs/multi-tenancy.md): the scheduler decides
*where* threads run, at tenant arrival/departure/fault granularity; the
arbiter re-decides *how much* each tenant holds, every arbitration
period; ARU decides *how fast* threads run, every iteration; the
ScalePolicy decides *how many* replicas run, every control period.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.cluster.spec import ClusterSpec
from repro.errors import unknown_name_error
from repro.tenancy.ledger import ReservationLedger
from repro.tenancy.placement import PlacementView, resolve_placement
from repro.tenancy.tenant import ResourceDemand

#: Valid over-capacity behaviours.
ADMISSION_MODES = ("queue", "reject")


def resolve_admission(value: str) -> str:
    """Validate an admission-mode name with the did-you-mean treatment."""
    if value not in ADMISSION_MODES:
        raise unknown_name_error("admission mode", value, ADMISSION_MODES)
    return value


class Scheduler:
    """Resource-aware admission and placement over one cluster."""

    def __init__(self, cluster: ClusterSpec, placement="rstorm",
                 admission: str = "queue") -> None:
        self.cluster = cluster
        self.strategy = resolve_placement(placement)
        self.admission = resolve_admission(admission)
        self.ledger = ReservationLedger(cluster)
        #: Nodes excluded from placement (crashed).
        self.failed: Set[str] = set()

    def bind(self, nodes) -> "Scheduler":
        """Mirror present and future reservations into live nodes."""
        self.ledger.bind(nodes)
        return self

    # -- ledger passthrough ------------------------------------------------
    # The reservation state moved into the ledger; these delegates keep
    # the scheduler the single front door for admission-time callers.
    @property
    def committed(self) -> Dict[str, List[float]]:
        """node -> [cpu, mem_bytes, bandwidth_bps] currently reserved."""
        return self.ledger.committed

    def capacity(self, name: str) -> Tuple[float, float, float]:
        return self.ledger.capacity(name)

    def available(self, name: str) -> Tuple[float, float, float]:
        """Uncommitted capacity of one node (ignores failure state)."""
        return self.ledger.available(name)

    def utilization(self) -> Dict[str, Dict[str, float]]:
        """Per-node committed fraction on every axis: cpu/mem/bandwidth."""
        return self.ledger.utilization()

    def commit(self, placement: Mapping[str, str],
               demands: Mapping[str, ResourceDemand],
               tenant: str = None) -> None:
        """Reserve each placed thread's demand on its node."""
        self.ledger.commit(placement, demands, tenant=tenant)

    def release(self, placement: Mapping[str, str],
                demands: Mapping[str, ResourceDemand],
                tenant: str = None) -> None:
        """Return reservations made by :meth:`commit`."""
        self.ledger.release(placement, demands, tenant=tenant)

    # -- elastic budgets ----------------------------------------------------
    def budget(self, tenant: str) -> float:
        return self.ledger.budget(tenant)

    def used_budget(self, tenant: str) -> float:
        return self.ledger.used_budget(tenant)

    def set_budget(self, tenant: str, cpu: float) -> float:
        return self.ledger.set_budget(tenant, cpu)

    def request_headroom(self, tenant: str, cpu: float, node: str) -> bool:
        return self.ledger.request_headroom(tenant, cpu, node)

    def release_headroom(self, tenant: str, cpu: float, node: str) -> None:
        self.ledger.release_headroom(tenant, cpu, node)

    # -- placement ---------------------------------------------------------
    def _view(self, neighbors: Optional[Mapping] = None,
              exclude=()) -> PlacementView:
        dead = self.failed.union(exclude)
        nodes = tuple(
            n.name for n in self.cluster.nodes if n.name not in dead
        )
        return PlacementView(
            nodes=nodes,
            capacity={n: self.capacity(n) for n in nodes},
            available={n: list(self.available(n)) for n in nodes},
            neighbors=neighbors or {},
        )

    def try_place(self, tenant: str, threads,
                  demands: Mapping[str, ResourceDemand],
                  neighbors: Optional[Mapping] = None,
                  exclude=()) -> Optional[Dict[str, str]]:
        """A feasible thread->node map, or None — no ledger changes.

        ``exclude`` removes extra nodes from the view beyond the failed
        set (arbiters use it to migrate tenants *off* a hot node).
        """
        from repro.errors import ConfigError

        for thread in threads:
            if thread not in demands:
                raise ConfigError(
                    f"tenant {tenant!r}: no demand declared for "
                    f"thread {thread!r}"
                )
        return self.strategy.place(
            tenant, list(threads), demands, self._view(neighbors, exclude)
        )

    def admit(self, tenant: str, threads,
              demands: Mapping[str, ResourceDemand],
              neighbors: Optional[Mapping] = None,
              exclude=()) -> Optional[Dict[str, str]]:
        """Place and commit in one step; None leaves the ledger untouched."""
        placement = self.try_place(tenant, threads, demands, neighbors,
                                   exclude=exclude)
        if placement is not None:
            self.commit(placement, demands, tenant=tenant)
        return placement

    # -- fault surface -------------------------------------------------------
    def mark_failed(self, name: str) -> None:
        """Exclude a crashed node from future placement."""
        self.ledger.capacity(name)  # validates the node exists
        self.failed.add(name)

    def mark_recovered(self, name: str) -> None:
        self.failed.discard(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        used = sum(c[0] for c in self.committed.values())
        total = sum(self.capacity(n)[0] for n in self.committed)
        return (f"<Scheduler {self.strategy.name} "
                f"cpu {used:.1f}/{total:.1f} failed={sorted(self.failed)}>")
