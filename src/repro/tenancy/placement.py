"""Pluggable placement strategies for the cluster scheduler.

A strategy maps one tenant's threads onto cluster nodes against a
:class:`PlacementView` — the scheduler's snapshot of per-node available
resources. Strategies are pure bin-packing logic: no engine, no RNG, so
the hypothesis property tests drive them directly.

Built-ins (see :func:`placements_help_text`):

* ``round-robin`` — capacity-aware cycling: each thread goes to the next
  feasible node after a persistent cursor. The capacity-blind baseline
  benchmarks compare against.
* ``rstorm`` — R-Storm-style min-distance bin packing (Peng et al.,
  "R-Storm: Resource-Aware Scheduling in Storm"): place each thread on
  the feasible node minimizing the euclidean distance between what
  remains after placement and zero (tight packing), preferring nodes
  that already host one of the thread's graph neighbors (colocation cuts
  network transfers).
* ``spread`` — maximize post-placement headroom: each thread goes to the
  feasible node with the largest minimum available fraction, leveling
  load at the cost of more remote hops.

Register custom strategies with :func:`register_placement`; names
resolve through :func:`resolve_placement` (CLI ``--placement``, spec
files, :class:`~repro.tenancy.run.TenancySpec`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigError, unknown_name_error

#: Placement feasibility slack for float CPU arithmetic.
_EPS = 1e-9


@dataclass
class PlacementView:
    """One admission attempt's snapshot of the cluster.

    ``available`` is mutable on purpose: strategies subtract each
    placed thread's demand via :meth:`take`, so feasibility for the
    tenant's *later* threads accounts for its earlier ones. The
    scheduler builds a fresh view per attempt; a failed attempt
    discards it, leaving the reservation ledger untouched.
    """

    #: Candidate node names, in cluster declaration order (failed nodes
    #: are excluded by the scheduler before the view is built).
    nodes: Tuple[str, ...]
    #: node -> full capacity vector (cpu, mem_bytes, bandwidth_bps).
    capacity: Dict[str, Tuple[float, float, float]]
    #: node -> remaining capacity vector, consumed during placement.
    available: Dict[str, List[float]]
    #: thread -> graph-neighbor threads (shared buffer), for colocation.
    neighbors: Mapping[str, frozenset] = field(default_factory=dict)

    def fits(self, node: str, demand: Tuple[float, float, float]) -> bool:
        avail = self.available[node]
        return all(avail[i] + _EPS >= demand[i] for i in range(3))

    def take(self, node: str, demand: Tuple[float, float, float]) -> None:
        avail = self.available[node]
        for i in range(3):
            avail[i] -= demand[i]


class RoundRobinPlacement:
    """Capacity-aware round-robin: next feasible node after the cursor.

    The cursor persists across admissions (one strategy instance per
    scheduler), so successive tenants start from different nodes — the
    classic capacity-blind baseline, made merely capacity-*checking* so
    it can still refuse an infeasible tenant.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def place(self, tenant: str, threads, demands, view: PlacementView
              ) -> Optional[Dict[str, str]]:
        if not view.nodes:
            return None
        n = len(view.nodes)
        assignment: Dict[str, str] = {}
        for thread in threads:
            vector = demands[thread].as_vector()
            chosen = None
            for k in range(n):
                node = view.nodes[(self._cursor + k) % n]
                if view.fits(node, vector):
                    chosen = node
                    self._cursor = (self._cursor + k + 1) % n
                    break
            if chosen is None:
                return None
            view.take(chosen, vector)
            assignment[thread] = chosen
        return assignment


class RStormPlacement:
    """R-Storm min-distance bin packing with neighbor colocation.

    Per thread, among feasible nodes, minimize the tuple
    ``(colocation_penalty, distance, node_index)`` where the penalty is
    0 when the node already hosts one of the thread's graph neighbors
    (placed earlier in this attempt) and the distance is the euclidean
    norm of the post-placement remainder as fractions of node capacity —
    small remainder = tight packing, leaving big nodes whole for big
    tenants. The node index makes ties deterministic.
    """

    name = "rstorm"

    def place(self, tenant: str, threads, demands, view: PlacementView
              ) -> Optional[Dict[str, str]]:
        assignment: Dict[str, str] = {}
        for thread in threads:
            vector = demands[thread].as_vector()
            neighbor_nodes = {
                assignment[other]
                for other in view.neighbors.get(thread, ())
                if other in assignment
            }
            best = None
            best_key = None
            for index, node in enumerate(view.nodes):
                if not view.fits(node, vector):
                    continue
                capacity = view.capacity[node]
                avail = view.available[node]
                distance = 0.0
                for i in range(3):
                    if capacity[i] > 0:
                        remainder = (avail[i] - vector[i]) / capacity[i]
                        distance += remainder * remainder
                key = (0 if node in neighbor_nodes else 1,
                       math.sqrt(distance), index)
                if best_key is None or key < best_key:
                    best, best_key = node, key
            if best is None:
                return None
            view.take(best, vector)
            assignment[thread] = best
        return assignment


class SpreadPlacement:
    """Headroom-maximizing spread: level load across the cluster.

    Each thread goes to the feasible node whose *minimum* available
    fraction after placement is largest — the anti-packing strategy,
    useful when per-node interference dominates network cost.
    """

    name = "spread"

    def place(self, tenant: str, threads, demands, view: PlacementView
              ) -> Optional[Dict[str, str]]:
        assignment: Dict[str, str] = {}
        for thread in threads:
            vector = demands[thread].as_vector()
            best = None
            best_key = None
            for index, node in enumerate(view.nodes):
                if not view.fits(node, vector):
                    continue
                capacity = view.capacity[node]
                avail = view.available[node]
                headroom = min(
                    (avail[i] - vector[i]) / capacity[i]
                    for i in range(3) if capacity[i] > 0
                )
                key = (-headroom, index)
                if best_key is None or key < best_key:
                    best, best_key = node, key
            if best is None:
                return None
            view.take(best, vector)
            assignment[thread] = best
        return assignment


# -- registry ---------------------------------------------------------------


class _Entry:
    __slots__ = ("factory", "help")

    def __init__(self, factory: Callable[[], object], help: str) -> None:
        self.factory = factory
        self.help = help


_PLACEMENTS: Dict[str, _Entry] = {}


def register_placement(name: str, factory: Callable[[], object],
                       help: str = "", replace: bool = False) -> None:
    """Register a placement strategy under ``name``.

    ``factory`` returns a fresh strategy instance (strategies may be
    stateful, e.g. the round-robin cursor, so each scheduler gets its
    own). Use ``replace=True`` to intentionally shadow a built-in.
    """
    if not name:
        raise ConfigError("placement name must be non-empty")
    if name in _PLACEMENTS and not replace:
        raise ConfigError(
            f"placement {name!r} is already registered "
            f"(pass replace=True to override)"
        )
    if not callable(factory):
        raise ConfigError(f"placement factory must be callable, got {factory!r}")
    _PLACEMENTS[name] = _Entry(factory, help)


def resolve_placement(value):
    """A strategy instance from a registered name (or pass one through)."""
    if value is None:
        value = "rstorm"
    if hasattr(value, "place"):
        return value
    if not isinstance(value, str):
        raise ConfigError(
            f"placement must be a registered name or an object with a "
            f".place() method, got {value!r}"
        )
    entry = _PLACEMENTS.get(value)
    if entry is None:
        raise unknown_name_error("placement", value, _PLACEMENTS)
    return entry.factory()


def available_placements() -> List[str]:
    """Registered strategy names, sorted."""
    return sorted(_PLACEMENTS)


def placements_help_text() -> str:
    """The ``--list-placements`` catalog."""
    names = available_placements()
    width = max(len(n) for n in names) if names else 0
    lines = ["registered placement strategies:"]
    for name in names:
        lines.append(f"  {name:<{width}}  {_PLACEMENTS[name].help}")
    return "\n".join(lines)


register_placement(
    "round-robin", RoundRobinPlacement,
    help="next feasible node after a persistent cursor (capacity-blind "
         "baseline)",
)
register_placement(
    "rstorm", RStormPlacement,
    help="R-Storm min-distance bin packing over CPU/mem/bandwidth with "
         "neighbor colocation",
)
register_placement(
    "spread", SpreadPlacement,
    help="maximize post-placement headroom; levels load, ignores "
         "colocation",
)
