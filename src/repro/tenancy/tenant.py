"""Tenants: independently-owned applications sharing one cluster.

A :class:`TenantSpec` wraps any app (builtin name, ``TaskGraph``, or
``StampedeApp``) with everything the cluster scheduler needs to place
and account for it: a declared per-thread resource demand (the R-Storm
CPU/memory/bandwidth vector), a priority and fairness weight, a private
control policy and RNG seed, and an arrival/departure window on the
simulation clock. The :class:`Tenant` runtime object tracks the spec
through the admission state machine.

Tenants are namespaced: every graph node of tenant ``t`` appears in the
shared runtime graph as ``t/<local-name>``, so any number of tenants —
including many instances of the *same* app — coexist in one engine run,
contending for the same nodes and links.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, Mapping, Optional, Tuple

from repro.errors import ConfigError

#: Tenant admission states.
PENDING = "pending"      #: created, not yet offered to the scheduler
QUEUED = "queued"        #: over capacity; waiting for departures
RUNNING = "running"      #: placed and executing
REJECTED = "rejected"    #: over capacity under ``admission="reject"``
DEPARTED = "departed"    #: left voluntarily (departure time or teardown)
EVICTED = "evicted"      #: lost its placement to a fault, not re-placeable

TENANT_STATES = (PENDING, QUEUED, RUNNING, REJECTED, DEPARTED, EVICTED)


@dataclass(frozen=True)
class ResourceDemand:
    """Declared per-thread demand: the R-Storm resource vector.

    These are *reservations* the scheduler packs against node budgets
    (:attr:`~repro.cluster.spec.NodeSpec.capacity_vector`) — they gate
    admission and placement, never the data path: a tenant that bursts
    past its declaration simply contends like any other thread.
    """

    cpu: float = 0.5
    mem_bytes: int = 32 * 2**20
    bandwidth_bps: int = 10_000_000

    def __post_init__(self) -> None:
        if self.cpu < 0 or self.mem_bytes < 0 or self.bandwidth_bps < 0:
            raise ConfigError(
                f"resource demand must be non-negative, got "
                f"({self.cpu}, {self.mem_bytes}, {self.bandwidth_bps})"
            )

    def as_vector(self) -> Tuple[float, float, float]:
        """``(cpu, mem_bytes, bandwidth_bps)`` as floats."""
        return (float(self.cpu), float(self.mem_bytes),
                float(self.bandwidth_bps))


@dataclass(frozen=True)
class TenantSpec:
    """One tenant, declaratively.

    Attributes
    ----------
    name:
        Unique tenant identifier; also the default namespace prefix.
        Must not contain ``/`` (the namespace separator).
    app / app_config:
        What to run, in :class:`~repro.experiment.ExperimentSpec` terms:
        a builtin app name (with optional per-app config) or a
        ``TaskGraph``/``StampedeApp`` instance.
    policy / scale_policy:
        The tenant's private ARU rate policy and elastic-scale policy
        (names resolve through the control-plane registries). Each
        tenant gets its own feedback plane — one tenant's backwardSTP
        never leaks into another's.
    priority:
        Admission priority (higher admits first); ties break by
        declaration order.
    weight:
        Fairness weight for the weighted Jain index (> 0).
    seed:
        Private RNG seed for the tenant's task bodies. ``None`` derives
        one from the run seed and the tenant name, so equal-seeded
        tenants of the same app draw *identical* workloads.
    arrival / departure:
        Simulated seconds when the tenant arrives / departs. Arrival 0
        admits before the run starts; ``departure=None`` stays to the
        horizon.
    demand / thread_demands:
        Default per-thread :class:`ResourceDemand`, with optional
        per-thread (local name) overrides.
    namespace:
        Graph-name prefix; ``None`` means ``f"{name}/"``. The empty
        string runs the tenant unprefixed — at most one such tenant per
        run (used by the single-tenant equivalence contract).
    """

    name: str
    app: Any = "tracker"
    app_config: Any = None
    policy: Any = None
    scale_policy: Any = None
    priority: int = 0
    weight: float = 1.0
    seed: Optional[int] = None
    arrival: float = 0.0
    departure: Optional[float] = None
    demand: ResourceDemand = field(default_factory=ResourceDemand)
    thread_demands: Mapping[str, ResourceDemand] = field(default_factory=dict)
    namespace: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if "/" in self.name:
            raise ConfigError(
                f"tenant name {self.name!r} must not contain '/'"
            )
        if self.weight <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: weight must be > 0, got {self.weight}"
            )
        if self.arrival < 0:
            raise ConfigError(
                f"tenant {self.name!r}: negative arrival {self.arrival}"
            )
        if self.departure is not None and self.departure <= self.arrival:
            raise ConfigError(
                f"tenant {self.name!r}: departure {self.departure} must be "
                f"after arrival {self.arrival}"
            )
        if not isinstance(self.demand, ResourceDemand):
            raise ConfigError(
                f"tenant {self.name!r}: demand must be a ResourceDemand"
            )
        for thread, demand in dict(self.thread_demands).items():
            if not isinstance(demand, ResourceDemand):
                raise ConfigError(
                    f"tenant {self.name!r}: thread_demands[{thread!r}] must "
                    f"be a ResourceDemand"
                )
        if self.namespace is not None and self.namespace != "":
            if not self.namespace.endswith("/"):
                raise ConfigError(
                    f"tenant {self.name!r}: namespace must end with '/' "
                    f"(or be empty), got {self.namespace!r}"
                )

    def with_(self, **changes) -> "TenantSpec":
        return replace(self, **changes)

    @property
    def prefix(self) -> str:
        """The graph-name prefix this tenant's nodes live under."""
        return f"{self.name}/" if self.namespace is None else self.namespace

    # -- resolution (mirrors ExperimentSpec) ------------------------------
    def resolve_graph(self):
        """Build this tenant's private task graph."""
        from repro.runtime.api import StampedeApp
        from repro.runtime.graph import TaskGraph

        app = self.app
        if isinstance(app, StampedeApp):
            app = app.graph
        if isinstance(app, TaskGraph):
            if self.app_config is not None:
                raise ConfigError(
                    f"tenant {self.name!r}: app_config only applies when "
                    f"app is a builtin name"
                )
            return app
        if not isinstance(app, str):
            raise ConfigError(
                f"tenant {self.name!r}: app must be a name, TaskGraph, or "
                f"StampedeApp; got {app!r}"
            )
        if app == "tracker":
            from repro.apps.tracker import build_tracker
            return build_tracker(self.app_config)
        if app == "gesture":
            from repro.apps.gesture import build_gesture
            return build_gesture(self.app_config)
        if app == "stereo":
            from repro.apps.stereo import build_stereo
            return build_stereo(self.app_config)
        from repro.errors import unknown_name_error
        raise unknown_name_error(
            "app", app, ("tracker", "gesture", "stereo")
        )

    def resolve_policy(self):
        from repro.aru.config import AruConfig, aru_disabled

        if self.policy is None:
            return aru_disabled()
        if isinstance(self.policy, AruConfig):
            return self.policy
        from repro.control.registry import resolve_policy
        return resolve_policy(self.policy)

    def resolve_scale_policy(self):
        from repro.control.registry import resolve_scale_policy
        return resolve_scale_policy(self.scale_policy)

    def derive_seed(self, root_seed: int) -> int:
        """The tenant's task-RNG seed (explicit, or derived stably)."""
        if self.seed is not None:
            return self.seed
        digest = hashlib.sha256(
            f"{root_seed}:tenant.{self.name}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big")


class Tenant:
    """Live admission-state for one :class:`TenantSpec`."""

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.prefix = spec.prefix
        self.state = PENDING
        #: Built lazily at first admission attempt.
        self.graph = None
        self.aru = None
        self.scale = None
        self.rngs = None
        self._bus = None
        #: local graph name -> namespaced shared-graph name (post-merge).
        self.mapping: Dict[str, str] = {}
        self.threads: Tuple[str, ...] = ()
        self.buffers: Tuple[str, ...] = ()
        self.stages: Tuple[str, ...] = ()
        #: namespaced thread -> cluster node (and the local-keyed twin the
        #: scheduler's reservation ledger is keyed by).
        self.placement: Dict[str, str] = {}
        self.placement_local: Dict[str, str] = {}
        self.demands: Dict[str, ResourceDemand] = {}
        self.admitted_at: Optional[float] = None
        self.departed_at: Optional[float] = None
        #: When the tenant last entered the admission queue (None while
        #: not queued); arbiters read it to detect starvation.
        self.queued_at: Optional[float] = None
        #: Placement-holding seconds accumulated over *completed*
        #: residencies — a revoked-then-readmitted tenant's goodput is
        #: computed over everything it actually held, not just the last
        #: window.
        self.prior_residence = 0.0
        #: Times this tenant's reservation was revoked by an arbiter.
        self.revocations = 0
        #: Times this tenant was migrated (defrag / re-balance).
        self.migrations = 0
        #: Free-form note for the last state transition (e.g. crash node).
        self.detail = ""

    @property
    def priority(self) -> int:
        return self.spec.priority

    @property
    def weight(self) -> float:
        return self.spec.weight

    def build(self, root_seed: int) -> None:
        """Resolve graph/policies/RNG once (idempotent)."""
        if self.graph is not None:
            return
        from repro.sim.rng import RngRegistry

        graph = self.spec.resolve_graph()
        graph.validate()
        self.graph = graph
        self.aru = self.spec.resolve_policy()
        self.scale = self.spec.resolve_scale_policy()
        self.rngs = RngRegistry(seed=self.spec.derive_seed(root_seed))
        self.demands = {
            t: self.demand_for(t) for t in graph.threads()
        }

    def demand_for(self, local_thread: str) -> ResourceDemand:
        """The declared demand of one thread (per-thread override wins)."""
        return self.spec.thread_demands.get(local_thread, self.spec.demand)

    def bus(self, time_fn):
        """The tenant's private feedback plane (created on first use)."""
        if self._bus is None:
            from repro.control.propagation import FeedbackBus

            self._bus = FeedbackBus(self.aru, time_fn=time_fn)
        return self._bus

    def neighbors(self) -> Dict[str, FrozenSet[str]]:
        """Thread adjacency (shared buffer = neighbor) for colocation."""
        graph = self.graph
        adjacency: Dict[str, set] = {t: set() for t in graph.threads()}
        for buffer in graph.buffers():
            producers = graph.producers_of(buffer)
            consumers = graph.consumers_of(buffer)
            for p in producers:
                for c in consumers:
                    if p != c:
                        adjacency[p].add(c)
                        adjacency[c].add(p)
        return {t: frozenset(n) for t, n in adjacency.items()}

    def local_name(self, shared_name: str) -> str:
        """Strip this tenant's namespace prefix from a shared-graph name."""
        if self.prefix and shared_name.startswith(self.prefix):
            return shared_name[len(self.prefix):]
        return shared_name

    def residence(self, horizon: float) -> float:
        """Seconds the tenant held a placement (0 if never admitted).

        Cumulative across residencies: revocation closes a window into
        :attr:`prior_residence` and readmission opens a new one.
        """
        total = self.prior_residence
        if self.state == RUNNING and self.admitted_at is not None:
            total += max(0.0, horizon - self.admitted_at)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tenant {self.name!r} {self.state}>"
