"""One front door for multi-tenant runs: ``repro.run_tenants``.

Mirrors :mod:`repro.experiment`: a declarative :class:`TenancySpec`
resolves to one :class:`~repro.tenancy.runtime.TenantRuntime`, every
tenant coexisting in a *single* engine run — contending for the same
nodes and links, scheduled by one :class:`~repro.tenancy.Scheduler` —
and returns a :class:`TenancyResult` bundling per-tenant records, the
cross-tenant fairness report, the shared trace, and the admission log.

Arrival dynamics ride the DES clock: tenants with ``arrival=0`` admit
before the run starts (in priority order); later arrivals and departures
are driven by one manager process — spawned *only* when the schedule
needs it, so a static single-tenant run adds zero engine events over
:func:`repro.run_experiment` (the equivalence contract asserted in
``tests/tenancy/test_equivalence.py``).

>>> import repro
>>> from repro.tenancy import TenancySpec, TenantSpec
>>> result = repro.run_tenants(TenancySpec(
...     tenants=(TenantSpec("a"), TenantSpec("b")), horizon=3.0))
>>> sorted(result.records) == ["a", "b"]
True
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError
from repro.tenancy.fairness import FairnessReport, fairness_report
from repro.tenancy.runtime import TenantRuntime
from repro.tenancy.scheduler import Scheduler
from repro.tenancy.tenant import DEPARTED, RUNNING, Tenant, TenantSpec


@dataclass(frozen=True)
class TenancySpec:
    """Everything one multi-tenant run needs, in one declarative value.

    Attributes
    ----------
    tenants:
        The :class:`~repro.tenancy.TenantSpec` population (unique names;
        at most one with the empty namespace).
    cluster:
        A :class:`~repro.cluster.ClusterSpec`, an int (that many uniform
        nodes via :func:`~repro.cluster.spec.uniform_spec`), or None for
        four uniform nodes.
    placement:
        Placement strategy name (``rstorm`` / ``round-robin`` /
        ``spread``, or anything registered) or a strategy instance.
    admission:
        Over-capacity behaviour: ``"queue"`` (wait for departures) or
        ``"reject"``.
    arbiter:
        Cross-tenant arbitration: None (off — the pack-only plane, no
        added engine events), a registered arbiter name
        (``proportional`` / ``demand`` / ``null``), or an
        :class:`~repro.tenancy.arbiter.ArbiterConfig`. When on, a
        controller process periodically re-solves the allocation:
        granting/shrinking elastic budgets, revoking over-share
        tenants when the queue starves, and migrating tenants to
        defragment or re-balance.
    gc / seed / retry / record_stp / telemetry / horizon:
        As in :class:`~repro.experiment.ExperimentSpec`. ``seed`` is the
        *root* seed tenant seeds derive from.
    faults:
        A tuple of :class:`~repro.faults.FaultSpec` (or a schedule);
        node crashes flow through the scheduler's evict/re-place path.
    """

    tenants: Tuple[TenantSpec, ...] = ()
    cluster: Any = None
    placement: Any = "rstorm"
    admission: str = "queue"
    arbiter: Any = None
    gc: Any = "dgc"
    seed: int = 0
    horizon: float = 30.0
    faults: Any = ()
    retry: Any = None
    record_stp: bool = True
    telemetry: Any = False

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigError(f"horizon must be positive, got {self.horizon}")
        if self.arbiter is not None:
            from repro.tenancy.arbiter import resolve_arbiter_config
            resolve_arbiter_config(self.arbiter)  # fail fast on bad names
        seen = set()
        blank = None
        for spec in self.tenants:
            if not isinstance(spec, TenantSpec):
                raise ConfigError(
                    f"tenants must be TenantSpec instances, got {spec!r}"
                )
            if spec.name in seen:
                raise ConfigError(f"duplicate tenant name {spec.name!r}")
            seen.add(spec.name)
            if spec.prefix == "":
                if blank is not None:
                    raise ConfigError(
                        f"at most one blank-namespace tenant per run "
                        f"(got {blank!r} and {spec.name!r})"
                    )
                blank = spec.name

    def with_(self, **changes) -> "TenancySpec":
        return replace(self, **changes)

    def resolve_cluster(self):
        """The :class:`~repro.cluster.ClusterSpec` to run on."""
        from repro.cluster.spec import ClusterSpec, uniform_spec

        if self.cluster is None:
            return uniform_spec(4)
        if isinstance(self.cluster, ClusterSpec):
            return self.cluster
        if isinstance(self.cluster, int):
            if self.cluster < 1:
                raise ConfigError(
                    f"cluster node count must be >= 1, got {self.cluster}"
                )
            return uniform_spec(self.cluster)
        raise ConfigError(
            f"cluster must be a ClusterSpec, an int node count, or None; "
            f"got {self.cluster!r}"
        )

    def runtime_config(self):
        """The shared runtime's config (per-tenant knobs live on tenants)."""
        from repro.aru.config import aru_disabled
        from repro.runtime.retry import RetryPolicy
        from repro.runtime.runtime import RuntimeConfig

        kwargs: Dict[str, Any] = dict(
            cluster=self.resolve_cluster(),
            gc=self.gc,
            aru=aru_disabled(),
            seed=self.seed,
            placement={},
            record_stp=self.record_stp,
            telemetry=self.telemetry,
        )
        if self.retry is not None:
            if not isinstance(self.retry, RetryPolicy):
                raise ConfigError(
                    f"retry must be a RetryPolicy, got {self.retry!r}"
                )
            kwargs["retry"] = self.retry
        return RuntimeConfig(**kwargs)


@dataclass
class TenantRecord:
    """What one tenant experienced over the run."""

    name: str
    state: str
    #: Namespaced thread -> cluster node (final placement; {} if never
    #: admitted).
    placement: Dict[str, str] = field(default_factory=dict)
    deliveries: int = 0
    #: Deliveries per resident second (0 if never admitted).
    goodput: float = 0.0
    latency_p50: float = float("nan")
    latency_p95: float = float("nan")
    #: get-latest skips across the tenant's buffers.
    drops: int = 0
    admitted_at: Optional[float] = None
    departed_at: Optional[float] = None
    #: Cumulative placement-holding seconds (across revocations).
    residence: float = 0.0
    #: Arbitration acts the tenant was subject to.
    revocations: int = 0
    migrations: int = 0
    detail: str = ""


@dataclass
class TenancyResult:
    """Everything one finished multi-tenant run produced."""

    spec: TenancySpec
    #: tenant name -> :class:`TenantRecord`, in spec order.
    records: Dict[str, TenantRecord]
    fairness: FairnessReport
    trace: Any
    stats: Dict[str, dict]
    telemetry: Any
    fault_log: Any = None
    runtime: Any = None
    #: ``(t, tenant, decision, detail)`` admission history.
    admission_log: List[tuple] = field(default_factory=list)
    #: The arbiter controller's end-of-run digest (None = arbitration
    #: off): ticks, revocations, migrations, budget changes, per-tenant
    #: grant/denial audit, and the full action log.
    arbitration: Optional[Dict[str, Any]] = None

    @property
    def admitted(self) -> List[str]:
        """Tenants that held a placement at any point."""
        return [n for n, r in self.records.items()
                if r.admitted_at is not None or r.residence > 0]

    def format(self) -> str:
        """Human-readable run summary (CLI output)."""
        lines = []
        width = max((len(n) for n in self.records), default=0)
        for name, rec in self.records.items():
            lat = ("-" if rec.latency_p95 != rec.latency_p95
                   else f"{rec.latency_p95 * 1e3:7.1f}ms")
            lines.append(
                f"  {name:<{width}}  {rec.state:<9}"
                f" deliveries={rec.deliveries:<6d}"
                f" goodput={rec.goodput:8.3f}/s p95={lat}"
            )
        lines.append(self.fairness.format())
        if self.arbitration is not None:
            a = self.arbitration
            lines.append(
                f"arbitration: {a['arbiter']} ticks={a['ticks']}"
                f" revocations={a['revocations']}"
                f" migrations={a['migrations']}"
                f" budget-changes={a['grows'] + a['shrinks']}"
                f" grants={a['grants']} denials={a['grant_denials']}"
            )
        return "\n".join(lines)


# -- arrival schedules -------------------------------------------------------


def poisson_arrivals(tenants, rate: float, seed: int = 0,
                     start: float = 0.0) -> Tuple[TenantSpec, ...]:
    """Re-stamp arrivals as a Poisson process (``rate`` tenants/sec).

    Deterministic for a fixed seed; tenants keep their declared order
    (inter-arrival gaps are exponential draws).
    """
    if rate <= 0:
        raise ConfigError(f"arrival rate must be positive, got {rate}")
    rng = np.random.default_rng(seed)
    t = start
    out = []
    for spec in tenants:
        t += float(rng.exponential(1.0 / rate))
        out.append(spec.with_(arrival=t, departure=None)
                   if spec.departure is not None and spec.departure <= t
                   else spec.with_(arrival=t))
    return tuple(out)


def churn(tenants, rate: float, mean_lifetime: float, seed: int = 0,
          start: float = 0.0) -> Tuple[TenantSpec, ...]:
    """Poisson arrivals plus exponential lifetimes: continuous churn.

    Each tenant arrives per :func:`poisson_arrivals` and departs after
    an exponential residence of mean ``mean_lifetime`` seconds.
    """
    if mean_lifetime <= 0:
        raise ConfigError(
            f"mean_lifetime must be positive, got {mean_lifetime}"
        )
    rng = np.random.default_rng(seed)
    t = start
    out = []
    for spec in tenants:
        t += float(rng.exponential(1.0 / rate)) if rate > 0 else 0.0
        lifetime = float(rng.exponential(mean_lifetime))
        out.append(spec.with_(arrival=t, departure=t + max(1e-6, lifetime)))
    return tuple(out)


def scaled_tracker_config(factor: float, frame_period: Optional[float] = None,
                          cv: Optional[float] = None):
    """A tracker config with every stage cost scaled by ``factor``.

    The fleet benches run hundreds of tracker tenants in one engine;
    scaling the per-stage compute down (and the frame period up) keeps
    the *shape* of the pipeline while bounding total event count.
    ``cv`` optionally overrides every stage's jitter (0 = deterministic
    service times).
    """
    from repro.apps.tracker import TrackerConfig
    from repro.apps.vision import StageCost

    if factor <= 0:
        raise ConfigError(f"cost factor must be positive, got {factor}")
    cfg = TrackerConfig()
    changes: Dict[str, Any] = {}
    for name in cfg.__dataclass_fields__:
        value = getattr(cfg, name)
        if isinstance(value, StageCost):
            changes[name] = StageCost(
                mean=value.mean * factor,
                cv=value.cv if cv is None else cv,
                activity_amp=value.activity_amp,
                activity_period=value.activity_period,
            )
    if frame_period is not None:
        changes["frame_period"] = frame_period
    return cfg.with_(**changes)


# -- execution ---------------------------------------------------------------


def _tenancy_manager(runtime: TenantRuntime, events):
    """The one engine process driving arrivals and departures."""
    engine = runtime.engine
    for at, _seq, kind, tenant in events:
        delay = at - engine.now
        if delay > 0:
            yield engine.timeout(delay)
        if kind == "arrive":
            runtime.arrive(tenant)
        elif tenant.state == RUNNING:
            runtime.depart_tenant(tenant)
            runtime.retry_queued()
        elif tenant in runtime.queued:
            # Departure while still waiting: the tenant gives up its
            # queue slot rather than lingering past its own deadline.
            runtime.queued.remove(tenant)
            tenant.state = DEPARTED
            tenant.departed_at = engine.now
            runtime.admission_log.append(
                (engine.now, tenant.name, "departed", "left queue")
            )


def run_tenants(spec: Union[TenancySpec, None] = None,
                **overrides) -> TenancyResult:
    """Run one multi-tenant experiment end to end.

    Accepts a :class:`TenancySpec` or keyword overrides over the default
    spec (mirroring :func:`repro.run_experiment`).
    """
    if spec is None:
        spec = TenancySpec(**overrides)
    elif isinstance(spec, TenancySpec):
        if overrides:
            spec = spec.with_(**overrides)
    else:
        raise ConfigError(
            f"run_tenants takes a TenancySpec, got {spec!r}"
        )
    if not spec.tenants:
        raise ConfigError("run_tenants needs at least one tenant")

    config = spec.runtime_config()
    scheduler = Scheduler(config.cluster, placement=spec.placement,
                          admission=spec.admission)
    runtime = TenantRuntime(config, scheduler)

    tenants = [Tenant(t) for t in spec.tenants]
    static = [t for t in tenants if t.spec.arrival <= 0]
    for tenant in sorted(
        static, key=lambda t: (-t.priority, tenants.index(t))
    ):
        runtime.arrive(tenant)

    # Arbitration installs only when configured and non-null — the
    # no-arbiter default stays event-for-event identical to pack-only.
    controller = None
    if spec.arbiter is not None:
        from repro.tenancy.arbiter import (
            install_arbiter,
            resolve_arbiter_config,
        )
        controller = install_arbiter(
            runtime, resolve_arbiter_config(spec.arbiter)
        )

    # Faults install after static admissions so thread targets validate
    # against the populated graph.
    fault_log = None
    faults = spec.faults
    if faults is not None:
        from repro.faults import FaultInjector, FaultSchedule

        if not isinstance(faults, FaultSchedule):
            faults = FaultSchedule(tuple(faults))
        if not faults.is_empty:
            injector = FaultInjector(runtime, faults)
            injector.install()
            fault_log = injector.log

    events = []
    for index, tenant in enumerate(tenants):
        if tenant.spec.arrival > 0:
            events.append((tenant.spec.arrival, index, "arrive", tenant))
        if tenant.spec.departure is not None:
            events.append((tenant.spec.departure, index, "depart", tenant))
    if events:
        # Dynamic population: one manager process walks the schedule.
        # Skipped entirely for static populations — the zero-added-events
        # half of the single-tenant equivalence contract.
        events.sort(key=lambda e: (e[0], e[1]))
        runtime.engine.process(
            _tenancy_manager(runtime, events), name="tenancy.manager"
        )

    trace = runtime.run(until=spec.horizon)

    from repro.metrics.performance import latency_samples_by_thread

    by_thread = latency_samples_by_thread(trace)
    records: Dict[str, TenantRecord] = {}
    goodput: Dict[str, float] = {}
    weights: Dict[str, float] = {}
    for tenant in tenants:
        samples: List[float] = []
        deliveries = 0
        drops = 0
        if tenant.graph is not None and tenant.mapping:
            sinks = [tenant.mapping[s] for s in tenant.graph.sinks()]
            for sink in sinks:
                deliveries += len(trace.iterations_of(sink))
                samples.extend(by_thread.get(sink, ()))
            for name in tenant.buffers:
                buf = runtime.buffers.get(name)
                drops += getattr(buf, "total_skips", 0) if buf else 0
        residence = tenant.residence(spec.horizon)
        rate = deliveries / residence if residence > 0 else 0.0
        arr = np.asarray(samples, dtype=float)
        records[tenant.name] = TenantRecord(
            name=tenant.name,
            state=tenant.state,
            placement=dict(tenant.placement),
            deliveries=deliveries,
            goodput=rate,
            latency_p50=float(np.percentile(arr, 50)) if len(arr) else float("nan"),
            latency_p95=float(np.percentile(arr, 95)) if len(arr) else float("nan"),
            drops=drops,
            admitted_at=tenant.admitted_at,
            departed_at=tenant.departed_at,
            residence=residence,
            revocations=tenant.revocations,
            migrations=tenant.migrations,
            detail=tenant.detail,
        )
        if tenant.admitted_at is not None or residence > 0:
            goodput[tenant.name] = rate
            weights[tenant.name] = tenant.weight

    return TenancyResult(
        spec=spec,
        records=records,
        fairness=fairness_report(
            goodput, weights, utilization=scheduler.utilization()
        ),
        trace=trace,
        stats=runtime.stats(),
        telemetry=runtime.obs,
        fault_log=fault_log,
        runtime=runtime,
        admission_log=list(runtime.admission_log),
        arbitration=controller.summary() if controller else None,
    )
