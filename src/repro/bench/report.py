"""Plain-text rendering: tables and ASCII timelines for the benches.

The paper's figures 8/9 are memory-footprint-vs-time plots; in a terminal
harness we render them as fixed-grid ASCII charts plus CSV files for real
plotting. Tables mirror the layout of the paper's figures 6, 7 and 10.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.metrics.footprint import Timeline


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Monospace table with right-aligned numeric columns."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "-"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def ascii_timeline(timeline: Timeline, width: int = 72, height: int = 14,
                   title: str = "", y_max: Optional[float] = None) -> str:
    """Render a step function as an ASCII area chart.

    ``y_max`` pins the vertical scale so several charts share axes — the
    paper renders figs. 8/9 panels with a common scale for comparability.
    """
    if width < 8 or height < 3:
        raise ValueError("chart too small")
    _, values = timeline.sample(width)
    top = y_max if y_max is not None else (values.max() or 1.0)
    if top <= 0:
        top = 1.0
    rows: List[str] = []
    if title:
        rows.append(title)
    levels = np.clip(np.round(values / top * height), 0, height).astype(int)
    for level in range(height, 0, -1):
        label = f"{top * level / height / 1e6:7.1f}MB |" if level in (height, 1) \
            else "           |"
        line = "".join("#" if lv >= level else " " for lv in levels)
        rows.append(label + line)
    rows.append("           +" + "-" * width)
    rows.append(
        f"            t=0{'':{max(0, width - 22)}}t={timeline.times[-1]:.0f}s"
    )
    return "\n".join(rows)


def timeline_csv(timeline: Timeline, n: int = 400) -> str:
    """CSV of (seconds, bytes) samples for external plotting."""
    ts, vals = timeline.sample(n)
    lines = ["t_seconds,bytes"]
    lines.extend(f"{t:.4f},{v:.0f}" for t, v in zip(ts, vals))
    return "\n".join(lines) + "\n"
