"""In-cell measurement probes for sweep cells.

A probe runs *inside the worker process*, right after a cell's
simulation, with access to the live task graph and the trace recorder —
state that is either too heavy to ship back to the parent (the full
recorder) or not captured in :class:`~repro.bench.experiments.RunMetrics`
at all (mutable graph params such as computation-elimination counters).
It must return a flat, picklable ``{name: number}`` dict, which the
runner attaches to the cell result as ``extras``.

Probes are addressed *by name* in cell specs (strings pickle; functions
defined in benchmark modules may not exist in a freshly spawned worker),
so every probe must be registered here, in an importable module.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

#: probe(graph, recorder, **args) -> flat dict of scalars.
Probe = Callable[..., Dict[str, float]]

PROBES: Dict[str, Probe] = {}


def probe(name: str) -> Callable[[Probe], Probe]:
    """Register a probe under ``name`` (the value cell specs reference)."""

    def register(fn: Probe) -> Probe:
        PROBES[name] = fn
        return fn

    return register


def resolve_probe(name: str) -> Probe:
    try:
        return PROBES[name]
    except KeyError:
        raise ConfigError(
            f"unknown probe {name!r}; registered: {sorted(PROBES)}"
        ) from None


#: The tracker's upstream stages — the ones computation elimination [6]
#: would have to cancel before their (quick) iterations finish.
TRACKER_UPSTREAM = ("change_detection", "histogram",
                    "target_detect1", "target_detect2")


@probe("ce_stats")
def ce_stats(graph, recorder, threads: Sequence[str] = TRACKER_UPSTREAM):
    """Computation-elimination counters (the §3.2 prior-work ablation)."""
    ce_skips = sum(
        graph.attrs(t)["params"].get("ce_skips", 0) for t in graph.threads()
    )
    upstream_iters = sum(len(recorder.iterations_of(t)) for t in threads)
    return {
        "ce_skips": float(ce_skips),
        "upstream_iterations": float(upstream_iters),
        "ce_fire_rate": 100.0 * ce_skips / max(1, upstream_iters + ce_skips),
    }


@probe("throttle_phases")
def throttle_phases(
    graph,
    recorder,
    thread: str = "digitizer",
    phases: Sequence[Tuple[str, float, float]] = (),
):
    """Per-phase mean throttle target and delivered fps for ``thread``.

    ``phases`` is a sequence of ``(label, t_lo, t_hi)`` windows; the
    result carries ``target:<label>`` (seconds) and ``fps:<label>``.
    """
    from repro.metrics.control import control_series

    series = control_series(recorder, thread)
    out: Dict[str, float] = {}
    for label, lo, hi in phases:
        mask = (series.times >= lo) & (series.times < hi)
        mask &= ~np.isnan(series.throttle_target)
        target = float(np.mean(series.throttle_target[mask])) if mask.any() \
            else float("nan")
        delivered = [it for it in recorder.sink_iterations()
                     if lo <= it.t_end < hi]
        out[f"target:{label}"] = target
        out[f"fps:{label}"] = len(delivered) / (hi - lo)
    return out


@probe("latency_phases")
def latency_phases(
    graph,
    recorder,
    phases: Sequence[Tuple[str, float, float]] = (),
    stage: str = "",
):
    """Per-phase end-to-end latency percentiles and delivered fps.

    For each ``(label, t_lo, t_hi)`` window the result carries
    ``p50:<label>``/``p95:<label>`` (seconds, over items consumed by
    sink iterations ending inside the window) and ``fps:<label>``.
    With ``stage`` naming a replicated stage, ``replicas_final`` and
    ``replicas_spawned`` report where elastic scaling ended up — the
    in-cell evidence that a latency difference came from the pool
    actually resizing.
    """
    from repro.metrics.performance import _oldest_source_anchor

    anchors = _oldest_source_anchor(recorder)
    out: Dict[str, float] = {}
    for label, lo, hi in phases:
        samples = []
        delivered = 0
        for it in recorder.sink_iterations():
            if lo <= it.t_end < hi:
                delivered += 1
                for item_id in it.inputs:
                    anchor = anchors.get(item_id)
                    if anchor is not None:
                        samples.append(it.t_end - anchor)
        if samples:
            arr = np.asarray(samples)
            out[f"p50:{label}"] = float(np.percentile(arr, 50))
            out[f"p95:{label}"] = float(np.percentile(arr, 95))
        else:
            out[f"p50:{label}"] = float("nan")
            out[f"p95:{label}"] = float("nan")
        out[f"fps:{label}"] = delivered / (hi - lo)
    if stage and stage in graph.replicated_stages():
        out["replicas_final"] = float(len(graph.replicas_of(stage)))
        out["replicas_spawned"] = float(graph.stage_spec(stage)["next_index"])
    return out


@probe("control_phases")
def control_phases(
    graph,
    recorder,
    thread: str = "digitizer",
    phases: Sequence[Tuple[str, float, float]] = (),
):
    """:func:`throttle_phases` plus per-window target jitter.

    Adds ``target_std:<label>`` (std of the throttle target within the
    window) — the signal-smoothness measurement policy comparisons need
    (``benchmarks/bench_abl_pid.py``). A separate probe so existing
    ``throttle_phases`` cells keep their extras (and hence their
    content-addressed cache keys and fingerprints) bit-identical.
    """
    from repro.metrics.control import control_series

    out = throttle_phases(graph, recorder, thread=thread, phases=phases)
    series = control_series(recorder, thread)
    for label, lo, hi in phases:
        mask = (series.times >= lo) & (series.times < hi)
        mask &= ~np.isnan(series.throttle_target)
        out[f"target_std:{label}"] = (
            float(np.std(series.throttle_target[mask])) if mask.any()
            else float("nan")
        )
    return out
