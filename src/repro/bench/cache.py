"""Content-addressed cache of per-cell sweep results.

Each (config, policy, seed, horizon, ...) cell of an experiment sweep is
memoized on disk under a key that is a SHA-256 hash of a *canonical
representation* of everything that determines the cell's output:

* the code version (``repro.__version__`` — bump it and every key
  changes, so stale results can never leak across releases);
* every field of the cell spec, recursively canonicalized — dataclasses
  (``AruConfig``, ``TrackerConfig``, ``LoadSpec``, ...) by qualified
  class name plus sorted field values, the resolved :class:`ClusterSpec`
  of the cell's named configuration, callables by qualified name plus
  their instance state.

Because the simulator is seeded and deterministic, a cache hit is
bit-identical to a re-execution; re-running a sweep after editing only
the report layer therefore touches no simulation code at all.

Robustness: a corrupted or truncated cache file is *discarded* (and
deleted) rather than crashing the sweep — the cell simply re-executes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".bench_cache"


def canonical_repr(obj: Any) -> str:
    """A deterministic, content-reflecting string for hashable specs.

    Dict ordering, dataclass field order, and float formatting are all
    normalized so that equal-content specs — however constructed — map
    to equal strings.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)  # repr is shortest-exact for floats
    if isinstance(obj, (list, tuple)):
        inner = ",".join(canonical_repr(v) for v in obj)
        return f"[{inner}]"
    if isinstance(obj, (set, frozenset)):
        inner = ",".join(sorted(canonical_repr(v) for v in obj))
        return f"{{{inner}}}"
    if isinstance(obj, dict):
        inner = ",".join(
            f"{canonical_repr(k)}:{canonical_repr(v)}"
            for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        )
        return f"{{{inner}}}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        fields = ",".join(
            f"{f.name}={canonical_repr(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{cls.__module__}.{cls.__qualname__}({fields})"
    if isinstance(obj, type):
        return f"<class {obj.__module__}.{obj.__qualname__}>"
    if callable(obj):
        # Functions/classes hash by identity; callable instances (e.g.
        # KthOperator) additionally fold in their visible state.
        name = f"{getattr(obj, '__module__', '?')}." \
               f"{getattr(obj, '__qualname__', type(obj).__qualname__)}"
        state = getattr(obj, "__dict__", None)
        return f"<callable {name} {canonical_repr(state) if state else ''}>"
    raise TypeError(
        f"cannot canonicalize {type(obj).__qualname__!r} for cache keying"
    )


class ResultCache:
    """Pickle-per-cell result store under ``root``, keyed by content hash."""

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    # -- keying --------------------------------------------------------------
    def key(self, spec: Any) -> str:
        """The content hash addressing ``spec``'s result file.

        If the spec exposes ``cache_payload()`` (as ``CellSpec`` does),
        that expansion — which resolves named configurations to their
        full parameter sets — is hashed instead of the spec itself.
        """
        import repro

        expanded = spec.cache_payload() if hasattr(spec, "cache_payload") \
            else spec
        payload = f"repro=={repro.__version__}|{canonical_repr(expanded)}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def path_for(self, spec: Any) -> Path:
        return self.root / f"{self.key(spec)}.pkl"

    # -- access --------------------------------------------------------------
    def get(self, spec: Any):
        """The cached result for ``spec``, or None (miss / unreadable)."""
        path = self.path_for(spec)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupted, truncated, or written by an incompatible code
            # state: drop the file and treat as a miss.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if getattr(result, "spec", None) != spec:
            return None  # hash collision or foreign payload
        return result

    def put(self, spec: Any, result: Any) -> Path:
        """Store ``result`` under ``spec``'s key (atomic write)."""
        path = self.path_for(spec)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Delete every cached result; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, {len(self)} entries)"
