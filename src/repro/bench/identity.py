"""Canonical content fingerprints of sweep-cell results.

The DES is deterministic, so two runs of the same cell must agree on
every metric *bit for bit* — a property both the control-plane
differential tests and ``benchmarks/check_control_identity.py`` assert
by comparing fingerprints. The hash covers a cell's full
:class:`~repro.bench.experiments.RunMetrics` (scalars bit-exact via
``float.hex``, footprint timelines via raw array bytes) plus any probe
extras, so an equality of fingerprints means the whole postmortem is
identical, not just a headline number.
"""

from __future__ import annotations

import hashlib


def metrics_fingerprint(result) -> str:
    """Canonical sha256 of one :class:`CellResult`'s metrics + extras."""
    m = result.metrics
    h = hashlib.sha256()

    def feed(*parts) -> None:
        for part in parts:
            if isinstance(part, float):
                h.update(part.hex().encode())
            elif isinstance(part, (int, str)):
                h.update(repr(part).encode())
            elif part is None:
                h.update(b"None")
            else:
                raise TypeError(f"unhashable metric part: {part!r}")
            h.update(b"|")

    feed(m.config, m.policy, m.seed, m.horizon,
         m.mem_mean, m.mem_std, m.mem_peak, m.igc_mean, m.igc_std,
         m.wasted_memory, m.wasted_computation, m.throughput,
         m.latency_mean, m.latency_std, m.jitter,
         m.frames_produced, m.frames_delivered)
    for timeline in (m.footprint, m.igc_footprint):
        h.update(timeline.times.tobytes())
        h.update(timeline.values.tobytes())
    for key in sorted(result.extras):
        feed(key, float(result.extras[key]))
    return h.hexdigest()
