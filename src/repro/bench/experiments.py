"""Experiment definitions: one entry point per paper table/figure.

Each experiment runs the tracker on the simulated cluster for a grid of
(config, ARU policy, seed) and aggregates the §4 metrics. The paper
reports "average statistics over successive execution runs"; we average
over seeds, reporting across-run standard deviations where the paper does
(throughput, latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.apps.tracker import TrackerConfig, tracker_placement
from repro.aru.config import AruConfig, aru_disabled, aru_max, aru_min
from repro.cluster.spec import ClusterSpec, config1_spec, config2_spec
from repro.errors import ConfigError
from repro.metrics.footprint import Timeline
from repro.metrics.performance import jitter, latency_stats, throughput_fps
from repro.metrics.postmortem import PostmortemAnalyzer

#: The two hardware configurations of §5.
CONFIG_NAMES = ("config1", "config2")
#: The three policies of every paper table, in paper row order.
POLICY_FACTORIES: Dict[str, Callable[[], AruConfig]] = {
    "No ARU": aru_disabled,
    "ARU-min": aru_min,
    "ARU-max": aru_max,
}

DEFAULT_HORIZON = 120.0
DEFAULT_SEEDS = (0, 1, 2)


def cluster_for(config: str) -> ClusterSpec:
    if config == "config1":
        return config1_spec()
    if config == "config2":
        return config2_spec()
    raise ConfigError(f"unknown config {config!r}; expected {CONFIG_NAMES}")


def placement_for(config: str) -> Dict[str, str]:
    return tracker_placement() if config == "config2" else {}


@dataclass
class RunMetrics:
    """Every §4 metric for one (config, policy, seed) run."""

    config: str
    policy: str
    seed: int
    horizon: float
    mem_mean: float
    mem_std: float
    mem_peak: float
    igc_mean: float
    igc_std: float
    wasted_memory: float
    wasted_computation: float
    throughput: float
    latency_mean: float
    latency_std: float
    jitter: float
    footprint: Timeline
    igc_footprint: Timeline
    frames_produced: int
    frames_delivered: int


def metrics_from_trace(
    config: str,
    policy_name: str,
    seed: int,
    horizon: float,
    recorder,
) -> RunMetrics:
    """Postmortem of one finished run, folded into :class:`RunMetrics`."""
    pm = PostmortemAnalyzer(recorder)
    footprint = pm.footprint()
    igc = pm.ideal_footprint()
    lat_mean, lat_std = latency_stats(recorder)
    return RunMetrics(
        config=config,
        policy=policy_name,
        seed=seed,
        horizon=horizon,
        mem_mean=footprint.mean(),
        mem_std=footprint.std(),
        mem_peak=footprint.peak(),
        igc_mean=igc.mean(),
        igc_std=igc.std(),
        wasted_memory=pm.wasted_memory_fraction,
        wasted_computation=pm.wasted_computation_fraction,
        throughput=throughput_fps(recorder),
        latency_mean=lat_mean,
        latency_std=lat_std,
        jitter=jitter(recorder),
        footprint=footprint,
        igc_footprint=igc,
        frames_produced=len(recorder.iterations_of("digitizer")),
        frames_delivered=len(recorder.sink_iterations()),
    )


def run_tracker_once(
    config: str,
    policy: Union[AruConfig, str],
    seed: int = 0,
    horizon: float = DEFAULT_HORIZON,
    tracker_cfg: Optional[TrackerConfig] = None,
    gc: str = "dgc",
) -> RunMetrics:
    """One full tracker simulation + postmortem.

    ``policy`` is an explicit :class:`AruConfig` or a registered policy
    name (``"aru-min"``, ``"aru-pid"``, ...). This is the single-cell
    convenience wrapper over the sweep path: errors propagate (unlike
    :func:`repro.bench.runner.run_cell`, which folds them into the
    result).
    """
    from repro.bench.runner import CellSpec, _execute_cell

    spec = CellSpec(config=config, policy=policy, seed=seed, horizon=horizon,
                    tracker=tracker_cfg, gc=gc)
    return _execute_cell(spec).metrics


@dataclass
class PolicyAggregate:
    """Across-seed aggregate for one (config, policy) cell."""

    config: str
    policy: str
    runs: List[RunMetrics] = field(default_factory=list)

    def _vals(self, attr: str) -> np.ndarray:
        return np.array([getattr(r, attr) for r in self.runs])

    def mean(self, attr: str) -> float:
        return float(self._vals(attr).mean())

    def std(self, attr: str) -> float:
        return float(self._vals(attr).std())

    def ci95(self, attr: str) -> Tuple[float, float]:
        """Student-t 95% confidence interval for the across-seed mean.

        Degenerates to a point for a single seed (or zero variance).
        """
        vals = self._vals(attr)
        mean = float(vals.mean())
        if len(vals) < 2:
            return mean, mean
        sem = float(vals.std(ddof=1)) / np.sqrt(len(vals))
        if sem == 0.0:
            return mean, mean
        try:
            from scipy import stats

            half = float(stats.t.ppf(0.975, df=len(vals) - 1)) * sem
        except ImportError:  # pragma: no cover - scipy is a test dep
            half = 1.96 * sem
        return mean - half, mean + half


def grid_specs(
    configs: Sequence[str] = CONFIG_NAMES,
    policies: Optional[Dict[str, Callable[[], AruConfig]]] = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    tracker_cfg: Optional[TrackerConfig] = None,
    gc: str = "dgc",
    telemetry: bool = False,
    backend: str = "sim",
) -> List["CellSpec"]:
    """The paper's §5 grid as a flat list of sweep cell specs.

    Policy *factories* (possibly lambdas) are resolved to their
    :class:`AruConfig` values here, in the parent process — cell specs
    must stay picklable for the worker pool.
    """
    from repro.bench.runner import CellSpec

    policies = policies or POLICY_FACTORIES
    return [
        CellSpec(config=config, policy=factory(), label=label, seed=seed,
                 horizon=horizon, tracker=tracker_cfg, gc=gc,
                 telemetry=telemetry, backend=backend)
        for config in configs
        for label, factory in policies.items()
        for seed in seeds
    ]


def run_grid(
    configs: Sequence[str] = CONFIG_NAMES,
    policies: Optional[Dict[str, Callable[[], AruConfig]]] = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    tracker_cfg: Optional[TrackerConfig] = None,
    gc: str = "dgc",
    runner: Optional["SweepRunner"] = None,
    workers: int = 1,
    telemetry: bool = False,
    backend: str = "sim",
) -> Dict[Tuple[str, str], PolicyAggregate]:
    """Run the full (config x policy x seed) grid of the paper's §5.

    All cells go through a :class:`~repro.bench.runner.SweepRunner` —
    pass one in (``runner``) to share its worker pool and result cache,
    or just set ``workers`` for an ad-hoc parallel, uncached sweep. The
    default stays serial and uncached, which is what the unit tests
    want.
    """
    from repro.bench.runner import SweepRunner

    specs = grid_specs(configs, policies, seeds, horizon, tracker_cfg, gc,
                       telemetry=telemetry, backend=backend)
    runner = runner or SweepRunner(workers=workers)
    results = runner.run_metrics(specs)
    out: Dict[Tuple[str, str], PolicyAggregate] = {}
    for spec, result in zip(specs, results):
        key = (spec.config, spec.policy_label)
        if key not in out:
            out[key] = PolicyAggregate(config=spec.config,
                                       policy=spec.policy_label)
        out[key].runs.append(result.metrics)
    return out
