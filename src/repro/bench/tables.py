"""Table builders mirroring the paper's figures 6, 7 and 10."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.experiments import PolicyAggregate
from repro.bench.report import format_table

_POLICY_ORDER = ("No ARU", "ARU-min", "ARU-max")
MB = 1e6


def _aggs_for(grid: Dict[Tuple[str, str], PolicyAggregate], config: str
              ) -> List[PolicyAggregate]:
    """Aggregates for ``config``: paper policies first, then any others.

    Custom policies (a ``sweep --policy aru-pid`` run, a registered
    preset) are appended in grid order so every table renders whatever
    grid it is given instead of assuming the paper's three columns.
    """
    ordered = [grid[(config, p)] for p in _POLICY_ORDER if (config, p) in grid]
    ordered += [agg for (cfg, p), agg in grid.items()
                if cfg == config and p not in _POLICY_ORDER]
    return ordered


def fig6_memory_table(grid: Dict[Tuple[str, str], PolicyAggregate],
                      config: str) -> Tuple[str, List[List[object]]]:
    """Fig. 6: mean memory footprint, its σ, and % w.r.t. IGC.

    The IGC row is "the theoretical lower limit for the memory footprint"
    of the application: the smallest postmortem IGC bound over all
    executed policies. Every policy's measured footprint is >= its own
    trace's IGC >= this minimum, so the % column is always >= 100.
    """
    aggs = _aggs_for(grid, config)
    igc_agg = min(aggs, key=lambda a: a.mean("igc_mean"))
    igc_ref = igc_agg.mean("igc_mean")
    rows: List[List[object]] = []
    for agg in aggs:
        mean = agg.mean("mem_mean")
        rows.append([
            agg.policy,
            agg.mean("mem_std") / MB,
            mean / MB,
            100.0 * mean / igc_ref if igc_ref > 0 else float("nan"),
        ])
    rows.append(["IGC", igc_agg.mean("igc_std") / MB, igc_ref / MB, 100.0])
    table = format_table(
        ["policy", "Mem STD (MB)", "Mem mean (MB)", "% wrt IGC"],
        rows,
        title=f"[fig 6] Memory footprint — {config}",
    )
    return table, rows


def fig7_waste_table(grid: Dict[Tuple[str, str], PolicyAggregate],
                     config: str) -> Tuple[str, List[List[object]]]:
    """Fig. 7: % wasted memory and % wasted computation."""
    rows = [
        [
            agg.policy,
            100.0 * agg.mean("wasted_memory"),
            100.0 * agg.mean("wasted_computation"),
        ]
        for agg in _aggs_for(grid, config)
    ]
    table = format_table(
        ["policy", "% Mem wasted", "% Comp wasted"],
        rows,
        title=f"[fig 7] Wasted resources — {config}",
    )
    return table, rows


def fig10_performance_table(grid: Dict[Tuple[str, str], PolicyAggregate],
                            config: str) -> Tuple[str, List[List[object]]]:
    """Fig. 10: throughput (fps µ/σ across runs), latency (ms µ/σ), jitter.

    Throughput/latency σ are across-seed deviations — the paper averages
    "over successive execution runs". Jitter is within-run, averaged.
    """
    rows: List[List[object]] = []
    for agg in _aggs_for(grid, config):
        rows.append([
            agg.policy,
            agg.mean("throughput"),
            agg.std("throughput"),
            1e3 * agg.mean("latency_mean"),
            1e3 * agg.std("latency_mean"),
            1e3 * agg.mean("jitter"),
        ])
    table = format_table(
        ["policy", "fps mean", "fps STD", "lat mean (ms)", "lat STD (ms)",
         "jitter (ms)"],
        rows,
        title=f"[fig 10] Latency, throughput, jitter — {config}",
    )
    return table, rows
