"""Export helpers: experiment grids to CSV, traces to comparison reports."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.experiments import PolicyAggregate
from repro.metrics.performance import jitter, latency_stats, throughput_fps
from repro.metrics.postmortem import PostmortemAnalyzer
from repro.metrics.recorder import TraceRecorder

#: Per-run scalar columns exported to CSV, in order.
RUN_COLUMNS = (
    "config", "policy", "seed", "horizon",
    "mem_mean", "mem_std", "mem_peak", "igc_mean", "igc_std",
    "wasted_memory", "wasted_computation",
    "throughput", "latency_mean", "latency_std", "jitter",
    "frames_produced", "frames_delivered",
)


def grid_to_csv(grid: Dict[Tuple[str, str], PolicyAggregate]) -> str:
    """One CSV row per individual run in the grid (long format)."""
    lines = [",".join(RUN_COLUMNS)]
    for (_config, _policy), agg in sorted(grid.items()):
        for run in agg.runs:
            lines.append(",".join(_csv_cell(getattr(run, c)) for c in RUN_COLUMNS))
    return "\n".join(lines) + "\n"


def _csv_cell(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def summarize_trace(recorder: TraceRecorder) -> Dict[str, float]:
    """The standard scalar metric set for one finalized trace."""
    pm = PostmortemAnalyzer(recorder)
    lat_mean, lat_std = latency_stats(recorder)
    return {
        "duration_s": recorder.duration,
        "items": float(len(recorder.items)),
        "iterations": float(len(recorder.iterations)),
        "mem_mean_bytes": pm.footprint().mean(),
        "mem_std_bytes": pm.footprint().std(),
        "igc_mean_bytes": pm.ideal_footprint().mean(),
        "wasted_memory": pm.wasted_memory_fraction,
        "wasted_computation": pm.wasted_computation_fraction,
        "throughput_fps": throughput_fps(recorder),
        "latency_mean_s": lat_mean,
        "latency_std_s": lat_std,
        "jitter_s": jitter(recorder),
    }


def compare_traces(a: TraceRecorder, b: TraceRecorder,
                   label_a: str = "A", label_b: str = "B") -> str:
    """Side-by-side metric comparison of two finalized traces."""
    from repro.bench.report import format_table

    sa, sb = summarize_trace(a), summarize_trace(b)
    rows: List[List[object]] = []
    for key in sa:
        va, vb = sa[key], sb[key]
        if va == va and va != 0:  # not-nan, nonzero
            ratio: object = vb / va
        else:
            ratio = float("nan")
        rows.append([key, va, vb, ratio])
    return format_table(
        ["metric", label_a, label_b, f"{label_b}/{label_a}"],
        rows,
        title=f"trace comparison: {label_a} vs {label_b}",
    )
