"""Declarative experiment specs: JSON-able dicts -> runnable experiments.

Lets a whole experiment — workload, cluster, policy, GC, loads, horizon —
be described in one plain dict (and therefore a JSON file usable from the
CLI's ``run-config``), e.g.:

.. code-block:: json

    {
      "app": "tracker",
      "config": "config1",
      "aru": {"preset": "aru-max", "summary_filter": "ewma:0.2"},
      "gc": "dgc",
      "seed": 3,
      "horizon": 90.0,
      "loads": [{"node": "node0", "start": 30, "stop": 60, "threads": 4}],
      "tracker": {"frame_period": 0.02}
    }

Unknown keys fail loudly — config typos must never silently run the
default experiment.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.gesture import GestureConfig, build_gesture
from repro.apps.stereo import StereoConfig, build_stereo
from repro.apps.tracker import TrackerConfig, build_tracker, tracker_placement
from repro.aru.config import AruConfig, aru_disabled
from repro.cluster.load import LoadSpec
from repro.cluster.spec import config1_spec, config2_spec
from repro.control.registry import resolve_policy
from repro.errors import ConfigError
from repro.metrics.recorder import TraceRecorder
from repro.runtime.runtime import RuntimeConfig

_TOP_KEYS = {"app", "config", "aru", "gc", "seed", "horizon", "loads",
             "tracker", "gesture", "stereo", "placement"}


def _check_keys(d: Dict[str, Any], allowed, where: str) -> None:
    unknown = set(d) - set(allowed)
    if unknown:
        raise ConfigError(f"unknown key(s) in {where}: {sorted(unknown)}")


def aru_from_dict(spec: Any) -> AruConfig:
    """``"aru-max"`` / ``{"preset": ..., <AruConfig overrides>}`` -> config.

    Preset names resolve through the control-plane policy registry, so
    extensions registered via :func:`repro.control.register_policy` are
    usable from spec files too.
    """
    if spec is None:
        return aru_disabled()
    if isinstance(spec, str):
        return resolve_policy(spec)
    if not isinstance(spec, dict):
        raise ConfigError(f"aru spec must be a name or object, got {spec!r}")
    spec = dict(spec)
    preset_name = spec.pop("preset", "aru-min")
    base = aru_from_dict(preset_name)
    valid = set(AruConfig.__dataclass_fields__)
    _check_keys(spec, valid, "aru")
    return base.with_(**spec) if spec else base


def _app_config(cls, spec: Any, where: str):
    spec = dict(spec or {})
    valid = set(cls.__dataclass_fields__)
    _check_keys(spec, valid, where)
    return cls(**spec)


def experiment_from_dict(spec: Dict[str, Any]):
    """Build ``(graph, RuntimeConfig, horizon)`` from a plain dict."""
    if not isinstance(spec, dict):
        raise ConfigError("experiment spec must be a dict")
    _check_keys(spec, _TOP_KEYS, "experiment spec")

    app = spec.get("app", "tracker")
    placement: Dict[str, str] = dict(spec.get("placement") or {})
    if app == "tracker":
        graph = build_tracker(_app_config(TrackerConfig, spec.get("tracker"),
                                          "tracker"))
    elif app == "gesture":
        graph = build_gesture(_app_config(GestureConfig, spec.get("gesture"),
                                          "gesture"))
    elif app == "stereo":
        graph = build_stereo(_app_config(StereoConfig, spec.get("stereo"),
                                         "stereo"))
    else:
        raise ConfigError(f"unknown app {app!r}; expected tracker/gesture/stereo")

    config_name = spec.get("config", "config1")
    if config_name == "config1":
        cluster = config1_spec()
    elif config_name == "config2":
        cluster = config2_spec()
        if app == "tracker" and not placement:
            placement = tracker_placement()
    else:
        raise ConfigError(f"unknown config {config_name!r}")

    loads = tuple(
        LoadSpec(**load_spec) for load_spec in spec.get("loads", ())
    )
    horizon = float(spec.get("horizon", 120.0))
    runtime_config = RuntimeConfig(
        cluster=cluster,
        gc=spec.get("gc", "dgc"),
        aru=aru_from_dict(spec.get("aru")),
        seed=int(spec.get("seed", 0)),
        placement=placement,
        loads=loads,
    )
    return graph, runtime_config, horizon


def run_experiment(spec: Dict[str, Any]) -> TraceRecorder:
    """Build and run the experiment described by ``spec``.

    Delegates to :func:`repro.run_experiment` (the unified front door);
    kept for spec-file callers that only want the trace.
    """
    from repro.experiment import run_experiment as _run

    return _run(spec).trace
