"""Experiment harness: sweep runner, result cache, tables, comparison."""

from repro.bench.cache import DEFAULT_CACHE_DIR, ResultCache, canonical_repr
from repro.bench.compare import PAPER, format_shape_report, shape_checks
from repro.bench.export import (
    RUN_COLUMNS,
    compare_traces,
    grid_to_csv,
    summarize_trace,
)
from repro.bench.experiments import (
    CONFIG_NAMES,
    DEFAULT_HORIZON,
    DEFAULT_SEEDS,
    POLICY_FACTORIES,
    PolicyAggregate,
    RunMetrics,
    cluster_for,
    grid_specs,
    metrics_from_trace,
    placement_for,
    run_grid,
    run_tracker_once,
)
from repro.bench.identity import metrics_fingerprint
from repro.bench.probes import PROBES, probe
from repro.bench.report import ascii_timeline, format_table, timeline_csv
from repro.bench.runner import (
    CellResult,
    CellSpec,
    SweepRunner,
    SweepStats,
    default_workers,
    run_cell,
)
from repro.bench.specfile import (
    aru_from_dict,
    experiment_from_dict,
    run_experiment,
)
from repro.bench.tables import (
    fig6_memory_table,
    fig7_waste_table,
    fig10_performance_table,
)

__all__ = [
    "run_tracker_once",
    "run_grid",
    "grid_specs",
    "metrics_from_trace",
    "CellSpec",
    "CellResult",
    "SweepRunner",
    "SweepStats",
    "run_cell",
    "default_workers",
    "metrics_fingerprint",
    "ResultCache",
    "DEFAULT_CACHE_DIR",
    "canonical_repr",
    "PROBES",
    "probe",
    "RunMetrics",
    "PolicyAggregate",
    "CONFIG_NAMES",
    "POLICY_FACTORIES",
    "DEFAULT_HORIZON",
    "DEFAULT_SEEDS",
    "cluster_for",
    "placement_for",
    "fig6_memory_table",
    "fig7_waste_table",
    "fig10_performance_table",
    "format_table",
    "ascii_timeline",
    "timeline_csv",
    "PAPER",
    "shape_checks",
    "format_shape_report",
    "grid_to_csv",
    "compare_traces",
    "experiment_from_dict",
    "run_experiment",
    "aru_from_dict",
    "summarize_trace",
    "RUN_COLUMNS",
]
