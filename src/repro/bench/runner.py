"""Parallel experiment sweeps: fan (config, policy, seed) cells out.

The paper's §5 evaluation is a grid of independent simulation cells; the
DES is seeded and deterministic, so the cells can run in any order, in
any process, and produce bit-identical results. :class:`SweepRunner`
exploits that:

* cells are described by :class:`CellSpec` — a pure-data, picklable
  value object covering every knob the benches use (cluster config, ARU
  policy, seed, horizon, workload overrides, GC, injected load, noise);
* :func:`run_cell` is a pure function ``CellSpec -> CellResult``,
  executable in a ``concurrent.futures.ProcessPoolExecutor`` worker;
* results are optionally memoized through a content-addressed
  :class:`~repro.bench.cache.ResultCache`, so re-running a sweep after
  editing only the report layer is a pure cache hit;
* a failing cell is *reported* (traceback attached to its result), not
  fatal: the remaining cells complete, and the caller decides;
* ``KeyboardInterrupt`` cancels all pending cells and propagates.

The determinism contract — parallel and serial sweeps produce
bit-identical per-cell results — is enforced by
``tests/bench/test_runner_differential.py``.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.aru.config import AruConfig, aru_disabled
from repro.bench.cache import ResultCache
from repro.bench.probes import resolve_probe
from repro.cluster.load import LoadSpec
from repro.errors import ConfigError


def default_workers() -> int:
    """Default pool size: leave one CPU for the parent (min 1)."""
    return max(1, (os.cpu_count() or 2) - 1)


@dataclass(frozen=True)
class CellSpec:
    """One sweep cell, as pure picklable data.

    Every field must survive ``pickle`` (worker dispatch) and
    :func:`repro.bench.cache.canonical_repr` (cache keying); keep
    factories and other callables out — name things instead (``gc`` and
    ``probe`` are strings for exactly this reason).
    """

    config: str = "config1"
    #: An explicit :class:`AruConfig` or a registered policy name (the
    #: control-plane registry resolves names in the worker).
    policy: Union[AruConfig, str] = field(default_factory=aru_disabled)
    #: Row label for grouping/reporting; defaults to the policy's name.
    label: str = ""
    seed: int = 0
    horizon: float = 120.0
    tracker: Optional[Any] = None  # TrackerConfig; Any avoids a cycle
    #: Registered workload name (see repro.apps.elastic.WORKLOADS);
    #: ``None`` runs the default tracker app. Kept as a string so the
    #: spec stays picklable and cache-keyable.
    workload: Optional[str] = None
    workload_args: Tuple[Tuple[str, Any], ...] = ()
    #: Elastic-parallelism policy: a registered scale-policy name or an
    #: explicit :class:`~repro.control.ScaleConfig`; ``None`` = not
    #: configured (fixed N, zero added events).
    scale_policy: Optional[Any] = None
    gc: str = "dgc"
    #: DGC pass interval override (``None`` = the collector's default).
    gc_interval: Optional[float] = None
    #: Override the cluster's OS-scheduling noise coefficient.
    sched_noise_cv: Optional[float] = None
    loads: Tuple[LoadSpec, ...] = ()
    #: Scripted faults injected into the cell (see repro.faults). An
    #: empty tuple installs nothing, keeping fault-free cells
    #: bit-identical to pre-faults sweeps.
    faults: Tuple[Any, ...] = ()  # Tuple[FaultSpec, ...]; Any avoids a cycle
    #: Name of a registered in-worker probe (see repro.bench.probes).
    probe: Optional[str] = None
    probe_args: Tuple[Tuple[str, Any], ...] = ()
    #: Record telemetry (repro.obs) for this cell. The summary lands in
    #: :attr:`CellResult.telemetry` — deliberately NOT in ``extras``, so
    #: the determinism fingerprint is identical with telemetry on or off.
    telemetry: bool = False
    #: Execution backend, by registered name (see repro.backends). The
    #: default ``"sim"`` keeps cache keys and fingerprints of existing
    #: sweeps unchanged.
    backend: str = "sim"

    @property
    def aru(self) -> AruConfig:
        """The resolved :class:`AruConfig` (names go via the registry)."""
        from repro.control.registry import resolve_policy

        return resolve_policy(self.policy)

    @property
    def policy_label(self) -> str:
        if self.label:
            return self.label
        try:
            return self.aru.name
        except ConfigError:
            # An unresolvable name still needs a label so the failed
            # cell can be reported.
            return str(self.policy)

    def with_(self, **changes) -> "CellSpec":
        return replace(self, **changes)

    def cache_payload(self) -> Dict[str, Any]:
        """What the content-addressed cache key hashes.

        The named configuration is resolved to its full
        :class:`~repro.cluster.spec.ClusterSpec` so a change to the
        cluster model's parameters invalidates cached cells even though
        the spec only names the config. An *unresolvable* spec still
        gets a key (the cell itself will fail in the worker and is
        never cached, but key computation must not abort the sweep).
        """
        try:
            cluster = self._cluster()
            placement = self._placement()
        except ConfigError:
            cluster, placement = None, None
        return {
            "spec": self,
            "cluster": cluster,
            "placement": placement,
        }

    # -- resolution helpers (worker side) ------------------------------------
    def _cluster(self):
        from repro.cluster.spec import config1_spec, config2_spec

        if self.config == "config1":
            if self.sched_noise_cv is not None:
                return config1_spec(sched_noise_cv=self.sched_noise_cv)
            return config1_spec()
        if self.config == "config2":
            if self.sched_noise_cv is not None:
                return config2_spec(sched_noise_cv=self.sched_noise_cv)
            return config2_spec()
        raise ConfigError(
            f"unknown config {self.config!r}; expected config1/config2"
        )

    def _placement(self) -> Dict[str, str]:
        from repro.apps.tracker import tracker_placement

        if self.workload is not None:
            return {}
        return tracker_placement() if self.config == "config2" else {}

    def _gc(self):
        if self.gc_interval is not None:
            if self.gc != "dgc":
                raise ConfigError("gc_interval only applies to the 'dgc' GC")
            from repro.gc import DeadTimestampGC

            return DeadTimestampGC(interval=self.gc_interval)
        return self.gc


@dataclass
class CellResult:
    """Outcome of one cell: §4 metrics + probe extras, or a traceback."""

    spec: CellSpec
    metrics: Optional[Any] = None  # RunMetrics of a successful cell
    extras: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None  # formatted traceback of a failed cell
    #: Telemetry snapshot (hub.snapshot()) when the cell ran with
    #: ``telemetry=True``; None otherwise. Kept out of ``extras``
    #: because extras feed the determinism fingerprint.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _execute_cell(spec: CellSpec) -> CellResult:
    """Run one cell, letting any simulation error propagate.

    Delegates runtime assembly to :func:`repro.run_experiment` so the
    sweep path and the interactive paths cannot drift apart.
    """
    from repro.bench.experiments import metrics_from_trace
    from repro.experiment import ExperimentSpec, run_experiment

    aru = spec.aru
    if spec.workload is not None:
        from repro.apps.elastic import build_workload

        app: Any = build_workload(spec.workload, **dict(spec.workload_args))
        app_config = None
    else:
        app, app_config = "tracker", spec.tracker
    result = run_experiment(ExperimentSpec(
        app=app,
        app_config=app_config,
        config=spec._cluster(),
        policy=aru,
        scale_policy=spec.scale_policy,
        gc=spec._gc(),
        seed=spec.seed,
        horizon=spec.horizon,
        placement=spec._placement(),
        loads=spec.loads,
        faults=spec.faults,
        telemetry=spec.telemetry,
        backend=spec.backend,
    ))
    recorder = result.trace
    metrics = metrics_from_trace(spec.config, aru.name, spec.seed,
                                 spec.horizon, recorder)
    extras: Dict[str, float] = {}
    if spec.probe is not None:
        if getattr(result.runtime, "graph", None) is None:
            raise ConfigError(
                f"probe {spec.probe!r} inspects runtime internals and "
                f"requires backend='sim', not {spec.backend!r}")
        extras = resolve_probe(spec.probe)(
            result.runtime.graph, recorder, **dict(spec.probe_args)
        )
    telemetry = result.telemetry.snapshot() if spec.telemetry else None
    return CellResult(spec=spec, metrics=metrics, extras=extras,
                      telemetry=telemetry)


def run_cell(spec: CellSpec) -> CellResult:
    """Pure worker entry point: never raises for a failing *cell*.

    Exceptions from the simulation are folded into the result as a
    formatted traceback so one bad cell cannot abort a whole sweep.
    (``KeyboardInterrupt`` is deliberately not caught.)
    """
    try:
        return _execute_cell(spec)
    except Exception:
        return CellResult(spec=spec, error=traceback.format_exc())


@dataclass
class SweepStats:
    """Counters for one :meth:`SweepRunner.run` call."""

    executed: int = 0
    cache_hits: int = 0
    failures: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.cache_hits


#: progress(done_so_far, total, result) — called in the parent process.
ProgressFn = Callable[[int, int, CellResult], None]


class SweepRunner:
    """Fan cell specs over a process pool, with optional result caching.

    Parameters
    ----------
    workers:
        Pool size; ``None`` = ``os.cpu_count() - 1`` (min 1). ``1``
        runs cells serially in-process — no pool, no pickling — which
        the differential tests use as the reference execution.
    cache:
        A :class:`ResultCache` (or path-like, converted), or None to
        disable memoization.
    progress:
        Optional parent-side callback invoked after every finished cell
        (including cache hits).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else default_workers()
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.progress = progress
        self.stats = SweepStats()

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[CellSpec]) -> List[CellResult]:
        """Run every cell; results are in ``specs`` order.

        ``self.stats`` is reset at entry and reflects this sweep only.
        Failed cells come back with ``.error`` set; the sweep itself
        only raises for ``KeyboardInterrupt`` (after cancelling the
        cells that have not started).
        """
        specs = list(specs)
        self.stats = SweepStats()
        results: List[Optional[CellResult]] = [None] * len(specs)
        done = 0

        def finish(index: int, result: CellResult, *, from_cache: bool):
            nonlocal done
            results[index] = result
            done += 1
            if from_cache:
                self.stats.cache_hits += 1
            else:
                self.stats.executed += 1
                if not result.ok:
                    self.stats.failures += 1
                elif self.cache is not None:
                    self.cache.put(result.spec, result)
            if self.progress is not None:
                self.progress(done, len(specs), result)

        pending: List[int] = []
        for i, spec in enumerate(specs):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                finish(i, hit, from_cache=True)
            else:
                pending.append(i)

        if self.workers == 1:
            for i in pending:
                finish(i, run_cell(specs[i]), from_cache=False)
        elif pending:
            self._run_pool(specs, pending, finish)

        return results  # every index was finished above

    # ------------------------------------------------------------------
    def _run_pool(self, specs, pending, finish):
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {pool.submit(run_cell, specs[i]): i for i in pending}
            try:
                not_done = set(futures)
                while not_done:
                    finished, not_done = wait(not_done,
                                              return_when=FIRST_COMPLETED)
                    for fut in finished:
                        i = futures[fut]
                        exc = fut.exception()
                        if isinstance(exc, Exception):
                            # Infrastructure failure (e.g. the result
                            # didn't unpickle): report it on the cell.
                            tb = "".join(traceback.format_exception(exc))
                            finish(i, CellResult(spec=specs[i], error=tb),
                                   from_cache=False)
                        elif exc is not None:  # KeyboardInterrupt et al.
                            raise exc
                        else:
                            finish(i, fut.result(), from_cache=False)
            except KeyboardInterrupt:
                for fut in futures:
                    fut.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise

    # ------------------------------------------------------------------
    def run_metrics(self, specs: Sequence[CellSpec]) -> List[CellResult]:
        """Like :meth:`run`, but raise if any cell failed.

        For harnesses where a failed cell is a bug, not data.
        """
        results = self.run(specs)
        failed = [r for r in results if not r.ok]
        if failed:
            first = failed[0]
            raise RuntimeError(
                f"{len(failed)}/{len(results)} sweep cell(s) failed; "
                f"first: {first.spec.policy_label} seed={first.spec.seed}\n"
                f"{first.error}"
            )
        return results
