"""Paper reference values and shape checks.

The absolute numbers of the paper were measured on a 2005-era cluster we
only simulate, so the reproduction target is the *shape*: orderings,
rough factors, crossovers. ``PAPER`` records the published numbers
(figures 6, 7, 10); :func:`shape_checks` evaluates the qualitative claims
on our measured grid and reports pass/fail per claim.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.experiments import PolicyAggregate

#: Published values, keyed [config][policy] — figs. 6, 7 and 10.
PAPER: Dict[str, Dict[str, Dict[str, float]]] = {
    "config1": {
        "No ARU": dict(mem_std=4.31, mem_mean=33.62, pct_igc=387, wasted_mem=66.0,
                       wasted_comp=25.2, fps=3.30, fps_std=0.02, lat=661, lat_std=23,
                       jitter=77),
        "ARU-min": dict(mem_std=2.58, mem_mean=16.23, pct_igc=187, wasted_mem=4.1,
                        wasted_comp=2.8, fps=4.68, fps_std=0.09, lat=594, lat_std=9,
                        jitter=34),
        "ARU-max": dict(mem_std=0.49, mem_mean=12.45, pct_igc=143, wasted_mem=0.3,
                        wasted_comp=0.2, fps=4.18, fps_std=0.10, lat=350, lat_std=7,
                        jitter=46),
        "IGC": dict(mem_std=0.33, mem_mean=8.69, pct_igc=100),
    },
    "config2": {
        "No ARU": dict(mem_std=6.41, mem_mean=36.81, pct_igc=341, wasted_mem=60.7,
                       wasted_comp=24.4, fps=4.27, fps_std=0.06, lat=648, lat_std=23,
                       jitter=96),
        "ARU-min": dict(mem_std=2.94, mem_mean=15.72, pct_igc=145, wasted_mem=7.2,
                        wasted_comp=4.0, fps=4.47, fps_std=0.10, lat=605, lat_std=24,
                        jitter=89),
        "ARU-max": dict(mem_std=0.37, mem_mean=13.09, pct_igc=121, wasted_mem=4.8,
                        wasted_comp=2.1, fps=3.53, fps_std=0.15, lat=480, lat_std=13,
                        jitter=162),
        "IGC": dict(mem_std=0.33, mem_mean=10.81, pct_igc=100),
    },
}


def shape_checks(grid: Dict[Tuple[str, str], PolicyAggregate]
                 ) -> List[Tuple[str, bool]]:
    """Evaluate the paper's qualitative claims on a measured grid.

    Returns ``(claim, holds)`` pairs; benches print them and the
    integration suite asserts the core ones.
    """

    def m(config, policy, attr):
        return grid[(config, policy)].mean(attr)

    checks: List[Tuple[str, bool]] = []
    for config in ("config1", "config2"):
        if (config, "No ARU") not in grid:
            continue
        no, mn, mx = (m(config, p, "mem_mean") for p in
                      ("No ARU", "ARU-min", "ARU-max"))
        checks.append((
            f"{config}: memory footprint ordering No-ARU > ARU-min > ARU-max",
            no > mn > mx,
        ))
        checks.append((
            f"{config}: ARU-max cuts the footprint by >= half (paper: ~2/3)",
            mx < 0.5 * no,
        ))
        igc = min(m(config, p, "igc_mean")
                  for p in ("No ARU", "ARU-min", "ARU-max"))
        checks.append((
            f"{config}: ARU-max footprint within 60% of the IGC bound",
            mx <= 1.6 * igc,
        ))
        wm_no = m(config, "No ARU", "wasted_memory")
        wm_mx = m(config, "ARU-max", "wasted_memory")
        checks.append((
            f"{config}: wasted memory > 50% without ARU, <= 5% with ARU-max",
            wm_no > 0.5 and wm_mx <= 0.05,
        ))
        checks.append((
            f"{config}: wasted computation shrinks by >= 5x under ARU-max",
            m(config, "ARU-max", "wasted_computation")
            < m(config, "No ARU", "wasted_computation") / 5.0,
        ))
        lat_no = m(config, "No ARU", "latency_mean")
        lat_mx = m(config, "ARU-max", "latency_mean")
        checks.append((
            f"{config}: ARU-max improves latency over No-ARU",
            lat_mx < lat_no,
        ))
        checks.append((
            f"{config}: ARU-min throughput >= ARU-max throughput",
            m(config, "ARU-min", "throughput") >= m(config, "ARU-max", "throughput"),
        ))
    if ("config1", "No ARU") in grid:
        checks.append((
            "config1: ARU-min does not lose throughput vs No-ARU "
            "(paper: +42% from relieved contention)",
            m("config1", "ARU-min", "throughput")
            >= 0.98 * m("config1", "No ARU", "throughput"),
        ))
    if ("config2", "No ARU") in grid:
        checks.append((
            "config2: ARU-max sacrifices throughput (the paper's §5.2 artifact)",
            m("config2", "ARU-max", "throughput")
            < m("config2", "No ARU", "throughput"),
        ))
        checks.append((
            "config2: ARU-max has the worst jitter (aggressive throttling)",
            m("config2", "ARU-max", "jitter")
            > max(m("config2", "No ARU", "jitter"),
                  m("config2", "ARU-min", "jitter")),
        ))
    return checks


def format_shape_report(checks: List[Tuple[str, bool]]) -> str:
    lines = ["Shape checks vs the paper:"]
    for claim, holds in checks:
        lines.append(f"  [{'PASS' if holds else 'FAIL'}] {claim}")
    passed = sum(1 for _, ok in checks if ok)
    lines.append(f"  => {passed}/{len(checks)} hold")
    return "\n".join(lines)
