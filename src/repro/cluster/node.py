"""Simulated SMP node: CPU pool, contention, memory occupancy.

A :class:`Node` turns *requested* compute durations into *actual* busy
times under three effects, applied in this order:

1. **OS scheduling noise** — multiplicative lognormal with the node's
   ``sched_noise_cv`` (drawn from a per-node RNG stream);
2. **SMP contention** — inflation by
   :func:`~repro.cluster.contention.contention_factor` of the number of
   other compute segments in flight at segment start;
3. **memory pressure** — inflation by
   :func:`~repro.cluster.contention.memory_pressure_factor` of the bytes
   of channel storage resident on the node at segment start;
4. **CPU multiplexing** — a FIFO pool of ``ncpus`` units; segments queue
   when the node is oversubscribed.

Memory is pure accounting: channels call :meth:`alloc`/:meth:`free` and
the node tracks occupancy for footprint metrics.
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.contention import contention_factor, memory_pressure_factor
from repro.cluster.spec import NodeSpec
from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.resources import Resource
from repro.sim.rng import RngRegistry, lognormal_with_mean


class Node:
    """Live simulation object for one SMP node."""

    def __init__(self, engine: Engine, spec: NodeSpec, rngs: RngRegistry) -> None:
        self.engine = engine
        self.spec = spec
        self.name = spec.name
        self.cpus = Resource(engine, capacity=spec.ncpus, name=f"{spec.name}.cpus")
        self._noise_rng = rngs.stream(f"node.{spec.name}.sched_noise")
        #: Compute segments currently executing (granted a CPU).
        self.active_segments = 0
        #: Total CPU-seconds consumed on this node.
        self.busy_time = 0.0
        #: Bytes currently allocated on this node.
        self.mem_in_use = 0
        #: High-water mark of :attr:`mem_in_use`.
        self.mem_peak = 0
        #: Fault-injection state: a failed node's resident threads are
        #: dead (the runtime kills them); channel storage survives — the
        #: simplifying "stable storage" assumption of docs/fault-model.md.
        self.failed = False
        #: Number of crash faults applied to this node so far.
        self.crash_count = 0
        # -- scheduler reservations (declarative, see repro.tenancy) ------
        #: CPU cores committed to placed tenants (may be fractional).
        self.cpu_committed = 0.0
        #: Bytes of memory committed to placed tenants.
        self.mem_committed = 0
        #: NIC bytes/second committed to placed tenants.
        self.bw_committed = 0

    # -- scheduler reservations ---------------------------------------------
    def commit(self, cpu: float, mem_bytes: int, bandwidth_bps: int) -> None:
        """Reserve declared tenant demand against this node's budgets.

        Pure accounting for the cluster scheduler — it never gates the
        data path (actual CPU time still flows through :meth:`compute`).
        """
        if cpu < 0 or mem_bytes < 0 or bandwidth_bps < 0:
            raise SimulationError(
                f"node {self.name!r}: negative commitment "
                f"({cpu}, {mem_bytes}, {bandwidth_bps})"
            )
        self.cpu_committed += cpu
        self.mem_committed += mem_bytes
        self.bw_committed += bandwidth_bps

    def uncommit(self, cpu: float, mem_bytes: int, bandwidth_bps: int) -> None:
        """Release a reservation made with :meth:`commit`."""
        if (self.cpu_committed - cpu < -1e-9 or self.mem_committed < mem_bytes
                or self.bw_committed < bandwidth_bps):
            raise SimulationError(
                f"node {self.name!r}: releasing more than committed"
            )
        self.cpu_committed = max(0.0, self.cpu_committed - cpu)
        self.mem_committed -= mem_bytes
        self.bw_committed -= bandwidth_bps

    @property
    def cpu_headroom(self) -> float:
        """Cores not yet committed to tenants (0 while failed).

        What an arbiter may still grant here: declared capacity minus
        reservations, *not* instantaneous busy-ness — a failed node
        offers nothing regardless of its ledger state.
        """
        if self.failed:
            return 0.0
        return max(0.0, float(self.spec.ncpus) - self.cpu_committed)

    # -- fault control ------------------------------------------------------
    def fail(self) -> None:
        """Mark the node crashed (bookkeeping; the runtime kills threads)."""
        self.failed = True
        self.crash_count += 1

    def recover(self) -> None:
        """Mark the node back up (the runtime respawns its threads)."""
        self.failed = False

    # -- compute -----------------------------------------------------------
    def effective_duration(self, duration: float) -> float:
        """Requested duration -> actual duration under noise + contention.

        Deterministic given the RNG stream state and the current number of
        active segments. Exposed separately for unit testing.
        """
        if duration < 0:
            raise SimulationError(f"negative compute duration: {duration}")
        noisy = lognormal_with_mean(self._noise_rng, duration, self.spec.sched_noise_cv) \
            if duration > 0 else 0.0
        factor = contention_factor(self.spec.smp_contention_alpha, self.active_segments)
        factor *= memory_pressure_factor(self.spec.mem_pressure_per_mb, self.mem_in_use)
        return noisy * factor

    def compute(self, duration: float) -> Generator:
        """Process generator: occupy one CPU for the effective duration.

        Yields until the segment completes; the generator's return value is
        the actual busy time (used by STP meters and waste accounting).
        """
        yield self.cpus.request()
        actual = self.effective_duration(duration)
        self.active_segments += 1
        try:
            yield self.engine.timeout(actual)
        finally:
            self.active_segments -= 1
            self.busy_time += actual
            self.cpus.release()
        return actual

    # -- memory ------------------------------------------------------------
    def alloc(self, nbytes: int) -> None:
        """Account ``nbytes`` of item storage on this node."""
        if nbytes < 0:
            raise SimulationError(f"negative allocation: {nbytes}")
        self.mem_in_use += nbytes
        if self.mem_in_use > self.mem_peak:
            self.mem_peak = self.mem_in_use

    def free(self, nbytes: int) -> None:
        """Release ``nbytes`` previously allocated with :meth:`alloc`."""
        if nbytes < 0:
            raise SimulationError(f"negative free: {nbytes}")
        if nbytes > self.mem_in_use:
            raise SimulationError(
                f"node {self.name!r}: freeing {nbytes} B with only "
                f"{self.mem_in_use} B in use"
            )
        self.mem_in_use -= nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Node {self.name} cpus={self.cpus.in_use}/{self.spec.ncpus} "
            f"mem={self.mem_in_use}B>"
        )
