"""Simulated interconnect: per-directed-pair serialized links.

A remote ``put`` ships the item over the link between the producer's node
and the channel's node. Each directed node pair owns one :class:`Link`
that serializes its transfers (store-and-forward); local transfers cost
nothing. Gigabit-Ethernet-scale parameters come from
:class:`~repro.cluster.spec.LinkSpec`.

Fault surface (``docs/fault-model.md``): a link can be *degraded* (its
transfer times inflate by a factor), *partitioned* (transfers raise
:class:`~repro.errors.LinkDown`, or block until restore in ``"block"``
mode), or *lossy* (each completed transfer is dropped with a seeded
probability, raising :class:`~repro.errors.MessageDropped`). A healthy
link takes none of these paths, so fault-free runs are bit-identical to
the pre-fault-model behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, Tuple

from repro.cluster.spec import ClusterSpec, LinkSpec
from repro.errors import ConfigError, LinkDown, MessageDropped
from repro.obs.hub import NULL_HUB
from repro.sim.engine import Engine
from repro.sim.resources import Resource, WaitQueue

#: Observer callback: ``(symptom, link_name, **info)``. Symptoms emitted
#: here are ``link_blocked`` (a transfer is parked on a partitioned link
#: in block mode) and ``transfer_ok`` (a transfer completed; ``duration``
#: and ``nominal`` let a detector infer degradation).
LinkObserver = Callable[..., None]


class Link:
    """One serialized point-to-point link."""

    def __init__(self, engine: Engine, spec: LinkSpec, name: str = "",
                 obs=NULL_HUB) -> None:
        self.engine = engine
        self.spec = spec
        self.name = name
        self.obs = obs
        # Fixed-slot telemetry handle, resolved once per link (ISSUE 7).
        self._transfer_h = obs.transfer_handle(name)
        self._wire = Resource(engine, capacity=1, name=f"link.{name}")
        #: Total bytes moved over this link.
        self.bytes_transferred = 0
        #: Total seconds the wire was occupied.
        self.busy_time = 0.0
        # -- fault state ----------------------------------------------------
        #: Transfer-time inflation; 1.0 = nominal bandwidth.
        self.degrade_factor = 1.0
        #: Whether the link is partitioned (no traffic passes).
        self.partitioned = False
        #: ``"fail"``: transfers raise LinkDown; ``"block"``: they park
        #: until :meth:`restore`.
        self.partition_mode = "fail"
        #: Per-transfer loss probability (0.0 = reliable).
        self.drop_probability = 0.0
        self._drop_rng = None
        self._restored = WaitQueue(engine, name=f"link.{name}.restored")
        #: Failure-detection callback (see :data:`LinkObserver`).
        self.observer: Optional[LinkObserver] = None
        #: Transfers lost to message-drop faults.
        self.transfers_dropped = 0
        #: Transfers that parked on a blocked partition.
        self.transfers_blocked = 0

    # -- fault control ------------------------------------------------------
    @property
    def healthy(self) -> bool:
        return (not self.partitioned and self.degrade_factor == 1.0
                and self.drop_probability == 0.0)

    def degrade(self, factor: float) -> None:
        """Inflate transfer times by ``factor`` (>= 1)."""
        if factor < 1.0:
            raise ConfigError(f"degrade factor must be >= 1, got {factor}")
        self.degrade_factor = float(factor)

    def clear_degrade(self) -> None:
        self.degrade_factor = 1.0

    def partition(self, mode: str = "fail") -> None:
        """Stop all traffic until :meth:`clear_partition`/:meth:`restore`."""
        if mode not in ("fail", "block"):
            raise ConfigError(f"partition mode must be fail/block, got {mode!r}")
        self.partitioned = True
        self.partition_mode = mode

    def clear_partition(self) -> None:
        self.partitioned = False
        self._restored.notify_all()

    def set_message_drop(self, probability: float, rng) -> None:
        """Lose each future transfer with ``probability`` (seeded ``rng``)."""
        if not 0.0 <= probability <= 1.0:
            raise ConfigError(
                f"drop probability must be in [0, 1], got {probability}"
            )
        self.drop_probability = float(probability)
        self._drop_rng = rng if probability > 0.0 else None

    def clear_message_drop(self) -> None:
        self.drop_probability = 0.0
        self._drop_rng = None

    def restore(self) -> None:
        """Return the link to full health (clears every fault)."""
        self.clear_degrade()
        self.clear_message_drop()
        self.clear_partition()

    # -- data path ----------------------------------------------------------
    def transfer(self, nbytes: int) -> Generator:
        """Process generator: move ``nbytes``; returns the wire time.

        Honors the fault state: raises :class:`LinkDown` on a fail-mode
        partition, parks until restore on a block-mode partition, inflates
        the wire time when degraded, and raises :class:`MessageDropped`
        (after occupying the wire — the bytes were sent, then lost) on a
        lossy link.
        """
        while self.partitioned:
            if self.partition_mode == "fail":
                raise LinkDown(f"link {self.name} is partitioned")
            self.transfers_blocked += 1
            if self.observer is not None:
                self.observer("link_blocked", self.name)
            yield self._restored.wait(lambda: (not self.partitioned) or None)
        yield self._wire.request()
        nominal = self.spec.transfer_time(nbytes)
        duration = nominal * self.degrade_factor
        try:
            yield self.engine.timeout(duration)
        finally:
            self.bytes_transferred += nbytes
            self.busy_time += duration
            self._wire.release()
        obs = self.obs
        if obs.enabled:
            self._transfer_h.update(nbytes, duration)
            if obs.spans_on:
                obs.span_transfer(self.name, nbytes, duration, self.engine.now)
        if (self._drop_rng is not None
                and self._drop_rng.random() < self.drop_probability):
            self.transfers_dropped += 1
            raise MessageDropped(f"message lost on link {self.name}")
        if self.observer is not None:
            self.observer("transfer_ok", self.name,
                          duration=duration, nominal=nominal)
        return duration


class Network:
    """Full-mesh network over a cluster's nodes, links created lazily."""

    def __init__(self, engine: Engine, spec: ClusterSpec, obs=NULL_HUB) -> None:
        self.engine = engine
        self.spec = spec
        self.obs = obs
        self._links: Dict[Tuple[str, str], Link] = {}
        self._observer: Optional[LinkObserver] = None

    def link(self, src: str, dst: str) -> Link:
        """The directed link ``src -> dst`` (raises for loopback)."""
        if src == dst:
            raise ConfigError(f"no self-link: {src!r}")
        names = self.spec.node_names
        if src not in names or dst not in names:
            raise ConfigError(f"unknown node in link {src!r}->{dst!r}")
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = Link(self.engine, self.spec.link_spec(src, dst),
                        name=f"{src}->{dst}", obs=self.obs)
            link.observer = self._observer
            self._links[key] = link
        return link

    def set_observer(self, observer: Optional[LinkObserver]) -> None:
        """Install a failure-detection observer on every link.

        Applies to links already created *and* to links created later
        (they are built lazily on first traffic).
        """
        self._observer = observer
        for link in self._links.values():
            link.observer = observer

    def transfer(self, src: str, dst: str, nbytes: int) -> Generator:
        """Process generator: move bytes from ``src`` to ``dst``.

        Local (same-node) transfers complete immediately with zero cost.
        """
        if src == dst:
            return 0.0
            yield  # pragma: no cover - makes this a generator
        wire_time = yield self.engine.process(self.link(src, dst).transfer(nbytes))
        return wire_time

    @property
    def total_bytes(self) -> int:
        """Bytes moved across all links so far."""
        return sum(l.bytes_transferred for l in self._links.values())
