"""Simulated interconnect: per-directed-pair serialized links.

A remote ``put`` ships the item over the link between the producer's node
and the channel's node. Each directed node pair owns one :class:`Link`
that serializes its transfers (store-and-forward); local transfers cost
nothing. Gigabit-Ethernet-scale parameters come from
:class:`~repro.cluster.spec.LinkSpec`.
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

from repro.cluster.spec import ClusterSpec, LinkSpec
from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.sim.resources import Resource


class Link:
    """One serialized point-to-point link."""

    def __init__(self, engine: Engine, spec: LinkSpec, name: str = "") -> None:
        self.engine = engine
        self.spec = spec
        self.name = name
        self._wire = Resource(engine, capacity=1, name=f"link.{name}")
        #: Total bytes moved over this link.
        self.bytes_transferred = 0
        #: Total seconds the wire was occupied.
        self.busy_time = 0.0

    def transfer(self, nbytes: int) -> Generator:
        """Process generator: move ``nbytes``; returns the wire time."""
        yield self._wire.request()
        duration = self.spec.transfer_time(nbytes)
        try:
            yield self.engine.timeout(duration)
        finally:
            self.bytes_transferred += nbytes
            self.busy_time += duration
            self._wire.release()
        return duration


class Network:
    """Full-mesh network over a cluster's nodes, links created lazily."""

    def __init__(self, engine: Engine, spec: ClusterSpec) -> None:
        self.engine = engine
        self.spec = spec
        self._links: Dict[Tuple[str, str], Link] = {}

    def link(self, src: str, dst: str) -> Link:
        """The directed link ``src -> dst`` (raises for loopback)."""
        if src == dst:
            raise ConfigError(f"no self-link: {src!r}")
        names = self.spec.node_names
        if src not in names or dst not in names:
            raise ConfigError(f"unknown node in link {src!r}->{dst!r}")
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = Link(self.engine, self.spec.link, name=f"{src}->{dst}")
            self._links[key] = link
        return link

    def transfer(self, src: str, dst: str, nbytes: int) -> Generator:
        """Process generator: move bytes from ``src`` to ``dst``.

        Local (same-node) transfers complete immediately with zero cost.
        """
        if src == dst:
            return 0.0
            yield  # pragma: no cover - makes this a generator
        wire_time = yield self.engine.process(self.link(src, dst).transfer(nbytes))
        return wire_time

    @property
    def total_bytes(self) -> int:
        """Bytes moved across all links so far."""
        return sum(l.bytes_transferred for l in self._links.values())
