"""Declarative cluster hardware specifications.

The paper's testbed: a 17-node cluster of 8-way 550 MHz Pentium-III Xeon
SMPs (3.69 GB each) on Gigabit Ethernet. Experiments use two
configurations:

* **config 1** — all five tracker tasks (six threads) on one node;
* **config 2** — tasks spread over five nodes, channels co-located with
  their producers.

:func:`config1_spec` and :func:`config2_spec` build those two shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigError

#: Gigabit Ethernet effective payload bandwidth, bytes/second. We use a
#: conservative ~80 % of line rate to account for framing and TCP overhead.
GIGABIT_BPS = int(1e9 * 0.80 / 8)

#: One-way small-message latency on the paper-era cluster interconnect.
DEFAULT_LATENCY_S = 100e-6


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one SMP node.

    Parameters
    ----------
    name:
        Unique node identifier.
    ncpus:
        Number of CPUs in the node's pool.
    mem_bytes:
        Physical memory (used only for occupancy reporting / sanity caps).
    smp_contention_alpha:
        Memory-bus contention coefficient: a compute segment running while
        ``r`` other threads are runnable on the node is inflated by
        ``1 + alpha * r``. The paper's config-1 runs noticeably slower
        than config-2 (3.30 vs 4.27 fps without ARU) because six threads
        share one node; this coefficient is the knob that reproduces it.
    sched_noise_cv:
        Coefficient of variation of multiplicative OS-scheduling noise
        applied to each compute segment (the paper's §3.3.2 "variances in
        the OS scheduling of threads" that make summary-STP noisy).
    mem_pressure_per_mb:
        Cache/VM pressure coefficient: compute segments are additionally
        inflated by ``1 + coeff * resident_channel_megabytes`` (see
        :func:`repro.cluster.contention.memory_pressure_factor`). Nonzero
        on the shared config-1 node, where the paper's ARU-min throughput
        gain comes from relieving exactly this pressure.
    """

    name: str
    ncpus: int = 8
    mem_bytes: int = int(3.69 * 2**30)
    smp_contention_alpha: float = 0.0
    sched_noise_cv: float = 0.0
    mem_pressure_per_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.ncpus < 1:
            raise ConfigError(f"node {self.name!r}: ncpus must be >= 1")
        if self.mem_bytes <= 0:
            raise ConfigError(f"node {self.name!r}: mem_bytes must be positive")
        if self.smp_contention_alpha < 0:
            raise ConfigError(f"node {self.name!r}: negative contention alpha")
        if self.sched_noise_cv < 0:
            raise ConfigError(f"node {self.name!r}: negative scheduling noise")
        if self.mem_pressure_per_mb < 0:
            raise ConfigError(f"node {self.name!r}: negative memory pressure")


@dataclass(frozen=True)
class LinkSpec:
    """Point-to-point link model: ``latency + size/bandwidth`` store-and-forward."""

    latency_s: float = DEFAULT_LATENCY_S
    bandwidth_bps: int = GIGABIT_BPS

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigError("negative link latency")
        if self.bandwidth_bps <= 0:
            raise ConfigError("bandwidth must be positive")

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` over this link (excluding queueing)."""
        if nbytes < 0:
            raise ConfigError("negative transfer size")
        return self.latency_s + nbytes / self.bandwidth_bps


@dataclass(frozen=True)
class ClusterSpec:
    """A set of nodes plus a uniform interconnect."""

    nodes: tuple  # tuple[NodeSpec, ...]
    link: LinkSpec = field(default_factory=LinkSpec)
    name: str = "cluster"

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigError("cluster needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate node names: {names}")

    @property
    def node_names(self) -> List[str]:
        return [n.name for n in self.nodes]

    def node_spec(self, name: str) -> NodeSpec:
        for n in self.nodes:
            if n.name == name:
                return n
        raise ConfigError(f"no node named {name!r} in {self.name!r}")


def config1_spec(
    *,
    ncpus: int = 8,
    smp_contention_alpha: float = 0.06,
    sched_noise_cv: float = 0.08,
    mem_pressure_per_mb: float = 0.018,
) -> ClusterSpec:
    """Paper config 1: one 8-way SMP node hosting every task and channel."""
    return ClusterSpec(
        nodes=(
            NodeSpec(
                name="node0",
                ncpus=ncpus,
                smp_contention_alpha=smp_contention_alpha,
                sched_noise_cv=sched_noise_cv,
                mem_pressure_per_mb=mem_pressure_per_mb,
            ),
        ),
        name="config1-1node",
    )


def config2_spec(
    *,
    n_nodes: int = 5,
    ncpus: int = 8,
    sched_noise_cv: float = 0.05,
    link: LinkSpec | None = None,
) -> ClusterSpec:
    """Paper config 2: five nodes, one task per node, Gigabit interconnect.

    Per-node contention is zero (each node runs a single task thread);
    scheduling noise is milder than config 1 since nodes are not shared.
    """
    return ClusterSpec(
        nodes=tuple(
            NodeSpec(
                name=f"node{i}",
                ncpus=ncpus,
                smp_contention_alpha=0.0,
                sched_noise_cv=sched_noise_cv,
            )
            for i in range(n_nodes)
        ),
        link=link or LinkSpec(),
        name=f"config2-{n_nodes}node",
    )
