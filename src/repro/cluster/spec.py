"""Declarative cluster hardware specifications.

The paper's testbed: a 17-node cluster of 8-way 550 MHz Pentium-III Xeon
SMPs (3.69 GB each) on Gigabit Ethernet. Experiments use two
configurations:

* **config 1** — all five tracker tasks (six threads) on one node;
* **config 2** — tasks spread over five nodes, channels co-located with
  their producers.

:func:`config1_spec` and :func:`config2_spec` build those two shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigError

#: Gigabit Ethernet effective payload bandwidth, bytes/second. We use a
#: conservative ~80 % of line rate to account for framing and TCP overhead.
GIGABIT_BPS = int(1e9 * 0.80 / 8)

#: One-way small-message latency on the paper-era cluster interconnect.
DEFAULT_LATENCY_S = 100e-6


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one SMP node.

    Parameters
    ----------
    name:
        Unique node identifier.
    ncpus:
        Number of CPUs in the node's pool.
    mem_bytes:
        Physical memory (used only for occupancy reporting / sanity caps).
    smp_contention_alpha:
        Memory-bus contention coefficient: a compute segment running while
        ``r`` other threads are runnable on the node is inflated by
        ``1 + alpha * r``. The paper's config-1 runs noticeably slower
        than config-2 (3.30 vs 4.27 fps without ARU) because six threads
        share one node; this coefficient is the knob that reproduces it.
    sched_noise_cv:
        Coefficient of variation of multiplicative OS-scheduling noise
        applied to each compute segment (the paper's §3.3.2 "variances in
        the OS scheduling of threads" that make summary-STP noisy).
    mem_pressure_per_mb:
        Cache/VM pressure coefficient: compute segments are additionally
        inflated by ``1 + coeff * resident_channel_megabytes`` (see
        :func:`repro.cluster.contention.memory_pressure_factor`). Nonzero
        on the shared config-1 node, where the paper's ARU-min throughput
        gain comes from relieving exactly this pressure.
    bandwidth_bps:
        The node's NIC budget, bytes/second — a *declarative* resource
        budget for R-Storm-style placement (see :mod:`repro.tenancy`),
        not a data-path rate limit (wire time stays the link's job).
        Together with ``ncpus`` and ``mem_bytes`` this forms the
        per-node CPU/memory/bandwidth vector the scheduler packs
        against.
    """

    name: str
    ncpus: int = 8
    mem_bytes: int = int(3.69 * 2**30)
    smp_contention_alpha: float = 0.0
    sched_noise_cv: float = 0.0
    mem_pressure_per_mb: float = 0.0
    bandwidth_bps: int = GIGABIT_BPS

    def __post_init__(self) -> None:
        if self.ncpus < 1:
            raise ConfigError(f"node {self.name!r}: ncpus must be >= 1")
        if self.mem_bytes <= 0:
            raise ConfigError(f"node {self.name!r}: mem_bytes must be positive")
        if self.smp_contention_alpha < 0:
            raise ConfigError(f"node {self.name!r}: negative contention alpha")
        if self.sched_noise_cv < 0:
            raise ConfigError(f"node {self.name!r}: negative scheduling noise")
        if self.mem_pressure_per_mb < 0:
            raise ConfigError(f"node {self.name!r}: negative memory pressure")
        if self.bandwidth_bps <= 0:
            raise ConfigError(
                f"node {self.name!r}: bandwidth_bps must be positive"
            )

    @property
    def capacity_vector(self) -> Tuple[float, int, int]:
        """The placement budget ``(ncpus, mem_bytes, bandwidth_bps)``."""
        return (float(self.ncpus), self.mem_bytes, self.bandwidth_bps)


@dataclass(frozen=True)
class LinkSpec:
    """Point-to-point link model: ``latency + size/bandwidth`` store-and-forward."""

    latency_s: float = DEFAULT_LATENCY_S
    bandwidth_bps: int = GIGABIT_BPS

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigError("negative link latency")
        if self.bandwidth_bps <= 0:
            raise ConfigError("bandwidth must be positive")

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` over this link (excluding queueing)."""
        if nbytes < 0:
            raise ConfigError("negative transfer size")
        return self.latency_s + nbytes / self.bandwidth_bps


@dataclass(frozen=True)
class PairLink:
    """One per-directed-pair link override inside a :class:`ClusterSpec`.

    The default interconnect is uniform (``ClusterSpec.link``); a
    heterogeneous fabric declares exceptions as ``PairLink`` entries —
    e.g. a slow uplink between two racks.
    """

    src: str
    dst: str
    spec: LinkSpec = field(default_factory=LinkSpec)

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise ConfigError("link endpoints must be non-empty node names")
        if self.src == self.dst:
            raise ConfigError(f"no self-link: {self.src!r} -> {self.dst!r}")


@dataclass(frozen=True)
class ClusterSpec:
    """A set of nodes plus an interconnect.

    The interconnect is uniform (``link``) unless per-directed-pair
    :class:`PairLink` overrides are declared in ``links``. Validation
    rejects duplicate node names and duplicate link endpoints with a
    clear :class:`~repro.errors.ConfigError` — collisions must never
    silently shadow an earlier declaration.
    """

    nodes: tuple  # tuple[NodeSpec, ...]
    link: LinkSpec = field(default_factory=LinkSpec)
    name: str = "cluster"
    links: tuple = ()  # tuple[PairLink, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigError("cluster needs at least one node")
        names = [n.name for n in self.nodes]
        seen: set = set()
        for n in names:
            if n in seen:
                raise ConfigError(
                    f"cluster {self.name!r}: duplicate node name {n!r}"
                )
            seen.add(n)
        endpoints: set = set()
        for pair in self.links:
            if not isinstance(pair, PairLink):
                raise ConfigError(
                    f"cluster {self.name!r}: links must be PairLink "
                    f"instances, got {pair!r}"
                )
            for end in (pair.src, pair.dst):
                if end not in seen:
                    raise ConfigError(
                        f"cluster {self.name!r}: link endpoint {end!r} is "
                        f"not a node (nodes: {sorted(seen)})"
                    )
            key = (pair.src, pair.dst)
            if key in endpoints:
                raise ConfigError(
                    f"cluster {self.name!r}: duplicate link "
                    f"{pair.src!r} -> {pair.dst!r}"
                )
            endpoints.add(key)

    @property
    def node_names(self) -> List[str]:
        return [n.name for n in self.nodes]

    def node_spec(self, name: str) -> NodeSpec:
        for n in self.nodes:
            if n.name == name:
                return n
        raise ConfigError(f"no node named {name!r} in {self.name!r}")

    def link_spec(self, src: str, dst: str) -> LinkSpec:
        """The :class:`LinkSpec` for the directed pair ``src -> dst``.

        Per-pair overrides win; everything else uses the uniform
        ``link``.
        """
        for pair in self.links:
            if pair.src == src and pair.dst == dst:
                return pair.spec
        return self.link


def config1_spec(
    *,
    ncpus: int = 8,
    smp_contention_alpha: float = 0.06,
    sched_noise_cv: float = 0.08,
    mem_pressure_per_mb: float = 0.018,
) -> ClusterSpec:
    """Paper config 1: one 8-way SMP node hosting every task and channel."""
    return ClusterSpec(
        nodes=(
            NodeSpec(
                name="node0",
                ncpus=ncpus,
                smp_contention_alpha=smp_contention_alpha,
                sched_noise_cv=sched_noise_cv,
                mem_pressure_per_mb=mem_pressure_per_mb,
            ),
        ),
        name="config1-1node",
    )


def config2_spec(
    *,
    n_nodes: int = 5,
    ncpus: int = 8,
    sched_noise_cv: float = 0.05,
    link: LinkSpec | None = None,
) -> ClusterSpec:
    """Paper config 2: five nodes, one task per node, Gigabit interconnect.

    Per-node contention is zero (each node runs a single task thread);
    scheduling noise is milder than config 1 since nodes are not shared.
    """
    return ClusterSpec(
        nodes=tuple(
            NodeSpec(
                name=f"node{i}",
                ncpus=ncpus,
                smp_contention_alpha=0.0,
                sched_noise_cv=sched_noise_cv,
            )
            for i in range(n_nodes)
        ),
        link=link or LinkSpec(),
        name=f"config2-{n_nodes}node",
    )


def uniform_spec(
    n_nodes: int,
    *,
    ncpus: int = 8,
    mem_bytes: int = int(3.69 * 2**30),
    bandwidth_bps: int = GIGABIT_BPS,
    sched_noise_cv: float = 0.0,
    link: Optional[LinkSpec] = None,
    name: Optional[str] = None,
) -> ClusterSpec:
    """``n_nodes`` identical nodes — the multi-tenant substrate shape.

    Unlike the paper configs this defaults to *quiet* nodes (no
    contention/noise), so fleet benchmarks measure placement and
    scheduling effects rather than per-node stochastic inflation.
    """
    if n_nodes < 1:
        raise ConfigError(f"need at least one node, got {n_nodes}")
    return ClusterSpec(
        nodes=tuple(
            NodeSpec(
                name=f"node{i}",
                ncpus=ncpus,
                mem_bytes=mem_bytes,
                bandwidth_bps=bandwidth_bps,
                sched_noise_cv=sched_noise_cv,
            )
            for i in range(n_nodes)
        ),
        link=link or LinkSpec(),
        name=name or f"uniform-{n_nodes}node",
    )


def heterogeneous_spec(
    *,
    n_big: int = 4,
    n_small: int = 4,
    big_ncpus: int = 16,
    small_ncpus: int = 2,
    big_bandwidth_bps: int = GIGABIT_BPS,
    small_bandwidth_bps: int = GIGABIT_BPS // 8,
    mem_bytes: int = int(3.69 * 2**30),
    link: Optional[LinkSpec] = None,
    name: Optional[str] = None,
) -> ClusterSpec:
    """A mixed fleet: ``n_big`` fat nodes plus ``n_small`` thin ones.

    The shape where placement policy matters: capacity-blind strategies
    treat ``small`` nodes like ``big`` ones and overload them, while
    resource-aware packing respects the per-node budget vectors. Small
    nodes get proportionally less memory and NIC bandwidth too.
    """
    if n_big < 0 or n_small < 0 or n_big + n_small < 1:
        raise ConfigError("need at least one node")
    big = tuple(
        NodeSpec(name=f"big{i}", ncpus=big_ncpus, mem_bytes=mem_bytes,
                 bandwidth_bps=big_bandwidth_bps)
        for i in range(n_big)
    )
    small = tuple(
        NodeSpec(
            name=f"small{i}",
            ncpus=small_ncpus,
            mem_bytes=max(1, mem_bytes * small_ncpus // max(1, big_ncpus)),
            bandwidth_bps=small_bandwidth_bps,
        )
        for i in range(n_small)
    )
    return ClusterSpec(
        nodes=big + small,
        link=link or LinkSpec(),
        name=name or f"hetero-{n_big}big-{n_small}small",
    )
