"""External load injection.

The paper's §1 motivates *dynamic* resource utilization with "dynamic
phenomena such as current load": the execution time of a task iteration
depends on what else the machine is doing. A :class:`LoadSpec` describes
a burst of competing work on one node — ``threads`` CPU-bound loops with
a duty cycle, active during ``[start, stop)`` — and the runtime turns it
into simulated processes that occupy CPUs and raise the contention level,
slowing application threads exactly as OS-level background load would.

The adaptivity ablation uses this to show the ARU loop *tracking* load:
the throttle target rises during the burst and recovers after it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.cluster.node import Node
from repro.errors import ConfigError
from repro.sim.engine import Engine


@dataclass(frozen=True)
class LoadSpec:
    """A rectangular burst of background load on one node.

    Parameters
    ----------
    node:
        Cluster node to load.
    start, stop:
        Burst window in simulated seconds.
    threads:
        Number of concurrent CPU-bound load loops.
    burst_s:
        Length of each compute segment (smaller = smoother occupancy).
    duty:
        Fraction of time each loop computes (1.0 = fully CPU-bound).
    """

    node: str
    start: float
    stop: float
    threads: int = 1
    burst_s: float = 0.02
    duty: float = 1.0

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ConfigError(f"empty load window [{self.start}, {self.stop})")
        if self.threads < 1:
            raise ConfigError("load needs at least one thread")
        if self.burst_s <= 0:
            raise ConfigError("burst_s must be positive")
        if not 0.0 < self.duty <= 1.0:
            raise ConfigError(f"duty must be in (0, 1], got {self.duty}")


def load_process(engine: Engine, node: Node, spec: LoadSpec) -> Generator:
    """One load loop: wait for the window, then burst until it closes."""
    if spec.start > 0:
        yield engine.timeout(spec.start)
    idle = spec.burst_s * (1.0 - spec.duty) / spec.duty if spec.duty < 1.0 else 0.0
    while engine.now < spec.stop:
        yield engine.process(node.compute(spec.burst_s))
        if idle > 0 and engine.now < spec.stop:
            yield engine.timeout(idle)


def spawn_load(engine: Engine, node: Node, spec: LoadSpec) -> None:
    """Start ``spec.threads`` load loops on ``node``."""
    for i in range(spec.threads):
        engine.process(
            load_process(engine, node, spec), name=f"load.{spec.node}.{i}"
        )
