"""Simulated cluster hardware: nodes, CPU pools, interconnect."""

from repro.cluster.contention import contention_factor, memory_pressure_factor
from repro.cluster.load import LoadSpec, load_process, spawn_load
from repro.cluster.network import Link, Network
from repro.cluster.node import Node
from repro.cluster.spec import (
    DEFAULT_LATENCY_S,
    GIGABIT_BPS,
    ClusterSpec,
    LinkSpec,
    NodeSpec,
    config1_spec,
    config2_spec,
)

__all__ = [
    "NodeSpec",
    "LinkSpec",
    "ClusterSpec",
    "Node",
    "Link",
    "Network",
    "contention_factor",
    "memory_pressure_factor",
    "LoadSpec",
    "load_process",
    "spawn_load",
    "config1_spec",
    "config2_spec",
    "GIGABIT_BPS",
    "DEFAULT_LATENCY_S",
]
