"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with one ``except`` clause while still
being able to discriminate on the specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class ProcessKilled(ReproError):
    """Raised *inside* a simulated process when it is forcibly interrupted."""


class ChannelClosed(ReproError):
    """A put/get was attempted on a channel that has been shut down."""


class ItemDropped(ReproError):
    """A get() request can never be satisfied (item already skipped/freed)."""


class LinkDown(ReproError):
    """A transfer was attempted over a partitioned network link."""


class MessageDropped(ReproError):
    """A transfer completed on the wire but the message was lost (fault
    injection: lossy-link mode). The sender may retry."""


class FaultError(ReproError):
    """A fault-injection schedule or operation is invalid."""


class GraphError(ReproError):
    """The application task graph is malformed (cycles, dangling nodes...)."""


class ConfigError(ReproError):
    """An experiment or runtime configuration value is invalid."""


class TraceError(ReproError):
    """The metrics trace is inconsistent (e.g. free before alloc)."""


class TelemetryError(ReproError):
    """The telemetry subsystem was misused (metric type clash, bad label
    set, export of an unbound hub...)."""
