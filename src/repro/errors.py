"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with one ``except`` clause while still
being able to discriminate on the specific subclass.

:func:`unknown_name_error` is the shared did-you-mean builder used by
every name registry (rate policies, scale policies, placement
strategies): config typos must never silently run a default, and every
registry should complain in the same voice.
"""

from __future__ import annotations

import difflib
from typing import Iterable


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class ProcessKilled(ReproError):
    """Raised *inside* a simulated process when it is forcibly interrupted."""


class ChannelClosed(ReproError):
    """A put/get was attempted on a channel that has been shut down."""


class ItemDropped(ReproError):
    """A get() request can never be satisfied (item already skipped/freed)."""


class LinkDown(ReproError):
    """A transfer was attempted over a partitioned network link."""


class MessageDropped(ReproError):
    """A transfer completed on the wire but the message was lost (fault
    injection: lossy-link mode). The sender may retry."""


class FaultError(ReproError):
    """A fault-injection schedule or operation is invalid."""


class GraphError(ReproError):
    """The application task graph is malformed (cycles, dangling nodes...)."""


class ConfigError(ReproError):
    """An experiment or runtime configuration value is invalid."""


class TraceError(ReproError):
    """The metrics trace is inconsistent (e.g. free before alloc)."""


class DistError(ReproError):
    """The distributed (multi-process) backend hit a transport or
    protocol failure: malformed frames, dropped connections, a worker
    process dying or missing its deadline."""


class FrameError(DistError):
    """A wire frame is malformed (unknown kind, oversized, truncated
    header)."""


class TelemetryError(ReproError):
    """The telemetry subsystem was misused (metric type clash, bad label
    set, export of an unbound hub...)."""


def unknown_name_error(kind: str, name: object,
                       available: Iterable[str]) -> ConfigError:
    """A :class:`ConfigError` for an unknown registry name.

    Builds the uniform ``unknown <kind> <name>; did you mean ...?
    (available: ...)`` message with :mod:`difflib` close-match
    suggestions. Callers ``raise`` the returned exception, keeping the
    traceback anchored at the resolution site.
    """
    names = sorted(available)
    close = difflib.get_close_matches(str(name), names, n=3, cutoff=0.4)
    hint = f"; did you mean {' or '.join(map(repr, close))}?" if close else ""
    return ConfigError(
        f"unknown {kind} {name!r}{hint} (available: {', '.join(names)})"
    )
