"""Exporters: Prometheus text, Chrome-trace JSON, and JSONL streams.

All three work from a live :class:`~repro.obs.hub.TelemetryHub` — the
Chrome-trace/Perfetto export turns the tracer's tracks into synthetic
processes/threads so thread iterations, buffer residencies, link
transfers, producer→consumer flow arrows, and fault instants land on
separate swim-lanes. Timestamps are simulated seconds scaled to
microseconds (the unit Chrome-trace mandates).
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterator, List

from repro.errors import TelemetryError
from repro.obs.hub import TelemetryHub
from repro.obs.metrics import Counter, Gauge, Histogram

#: Chrome-trace wants integer-ish microseconds; the DES clock is seconds.
_US = 1e6


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prom_labels(labels, extra: Dict[str, str] = None) -> str:
    pairs = list(labels)
    if extra:
        pairs += sorted(extra.items())
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(hub: TelemetryHub) -> str:
    """The registry in Prometheus text exposition format (one scrape)."""
    if not hub.enabled:
        raise TelemetryError("cannot export a disabled (null) telemetry hub")
    lines: List[str] = []
    typed = set()
    for metric in hub.metrics.collect():
        if metric.name not in typed:
            typed.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.metric_type}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(
                f"{metric.name}{_prom_labels(metric.labels)} "
                f"{_prom_value(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            for bound, running in metric.cumulative():
                le = "+Inf" if bound == float("inf") else _prom_value(bound)
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_prom_labels(metric.labels, {'le': le})} {running}"
                )
            lines.append(
                f"{metric.name}_sum{_prom_labels(metric.labels)} "
                f"{_prom_value(metric.total)}"
            )
            lines.append(
                f"{metric.name}_count{_prom_labels(metric.labels)} "
                f"{metric.count}"
            )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Chrome trace (Perfetto-loadable)
# ---------------------------------------------------------------------------

def _track_registry(hub: TelemetryHub) -> Dict[str, int]:
    """Assign each track name a stable synthetic tid (sorted order)."""
    tracks = set()
    for span in hub.tracer.spans:
        tracks.add(span.track)
    for inst in hub.tracer.instants:
        tracks.add(inst.track)
    for flow in hub.tracer.flows:
        tracks.add(flow.track)
    return {name: i + 1 for i, name in enumerate(sorted(tracks))}


def chrome_trace_events(hub: TelemetryHub) -> List[dict]:
    """The tracer as a list of Chrome-trace event dicts."""
    if not hub.enabled:
        raise TelemetryError("cannot export a disabled (null) telemetry hub")
    tids = _track_registry(hub)
    pid = 1
    events: List[dict] = []
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": track},
        })
    for span in hub.tracer.spans:
        end = span.t_end if span.t_end is not None else span.t_start
        args = dict(span.args)
        if span.parent_id is not None:
            args["parent_span"] = span.parent_id
        args["span_id"] = span.span_id
        events.append({
            "ph": "X", "pid": pid, "tid": tids[span.track],
            "name": span.name, "cat": span.cat,
            "ts": span.t_start * _US,
            "dur": max((end - span.t_start) * _US, 1.0),
            "args": args,
        })
    for inst in hub.tracer.instants:
        events.append({
            "ph": "i", "pid": pid, "tid": tids[inst.track],
            "name": inst.name, "cat": inst.cat, "ts": inst.t * _US,
            "s": "g", "args": dict(inst.args),
        })
    for flow in hub.tracer.flows:
        event = {
            "ph": flow.phase, "pid": pid, "tid": tids[flow.track],
            "name": flow.name, "cat": "dataflow", "id": flow.flow_id,
            "ts": flow.t * _US,
        }
        if flow.phase == "f":
            event["bp"] = "e"  # bind to enclosing slice
        events.append(event)
    return events


def chrome_trace(hub: TelemetryHub) -> dict:
    """Full Chrome-trace document (``traceEvents`` + metadata)."""
    return {
        "traceEvents": chrome_trace_events(hub),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "clock": "simulated-seconds-as-us",
            **{str(k): str(v) for k, v in hub.run_meta.items()},
            "dropped_events": hub.tracer.dropped,
        },
    }


def write_chrome_trace(hub: TelemetryHub, path: str) -> int:
    """Write the Perfetto-loadable trace JSON; returns the event count."""
    doc = chrome_trace(hub)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


# ---------------------------------------------------------------------------
# JSONL stream
# ---------------------------------------------------------------------------

def iter_jsonl(hub: TelemetryHub) -> Iterator[dict]:
    """Every telemetry record as a flat dict stream: header, metric
    samples, spans, instants, flows — each stamped with a ``rec`` tag so
    a reader can demultiplex without schema knowledge."""
    if not hub.enabled:
        raise TelemetryError("cannot export a disabled (null) telemetry hub")
    yield {"rec": "meta", **{str(k): v for k, v in hub.run_meta.items()},
           "t_end": hub.t_end, **hub.tracer.stats()}
    for sample in hub.metrics.snapshot():
        yield {"rec": "metric", **sample}
    for span in hub.tracer.spans:
        yield {"rec": "span", "span_id": span.span_id, "name": span.name,
               "cat": span.cat, "track": span.track, "t_start": span.t_start,
               "t_end": span.t_end, "parent_id": span.parent_id,
               "args": span.args}
    for inst in hub.tracer.instants:
        yield {"rec": "instant", "name": inst.name, "cat": inst.cat,
               "track": inst.track, "t": inst.t, "args": inst.args}
    for flow in hub.tracer.flows:
        yield {"rec": "flow", "phase": flow.phase, "flow_id": flow.flow_id,
               "track": flow.track, "t": flow.t}


def write_jsonl(hub: TelemetryHub, path: str) -> int:
    """Write the JSONL stream to ``path``; returns the record count."""
    n = 0
    with open(path, "w") as fh:
        for record in iter_jsonl(hub):
            fh.write(json.dumps(record))
            fh.write("\n")
            n += 1
    return n


def read_jsonl(path_or_file) -> List[dict]:
    """Load a JSONL telemetry export back into a record list."""
    if hasattr(path_or_file, "read"):
        return _read_jsonl_file(path_or_file)
    with open(path_or_file) as fh:
        return _read_jsonl_file(fh)


def _read_jsonl_file(fh: IO[str]) -> List[dict]:
    records = []
    for line in fh:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
