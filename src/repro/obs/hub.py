"""The telemetry hub: one object owning a run's metrics and spans.

Design constraints (ISSUE 5):

* **zero overhead when disabled** — a runtime without telemetry holds
  the module-level :data:`NULL_HUB` singleton, whose ``enabled`` is
  False; every instrumentation point is guarded by one attribute check
  (``if obs.enabled:``), so the disabled hot path pays a single load +
  branch and the micro-bench gate in ``benchmarks/check_regression.py``
  stays within threshold;
* **observation must not perturb** — hook bodies only *read* runtime
  state and write hub-private structures; they never touch the engine
  calendar, the RNG registry, or ARU state, so a telemetry-on run is
  bit-identical to a telemetry-off run (asserted by
  ``tests/obs/test_integration.py`` via ``metrics_fingerprint``);
* **sampling-aware** — item spans/flows are kept for every Nth item
  (:attr:`TelemetryConfig.span_sample`), and the span store is bounded
  with an explicit dropped counter.

The hub exposes *semantic* hooks (``on_put``, ``on_sync``,
``on_fault``, ...) rather than raw instruments so call sites stay one
line; the registry and tracer remain reachable for ad-hoc instruments
(``hub.metrics.counter(...)``) and for the exporters in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer


@dataclass(frozen=True)
class TelemetryConfig:
    """Declarative description of one run's telemetry.

    Attributes
    ----------
    enabled:
        Master switch; False resolves to :data:`NULL_HUB`.
    metrics / spans:
        Record the metric registry / the span trace. Both default on;
        turning ``spans`` off keeps counters at a fraction of the
        memory for long runs.
    span_sample:
        Keep every Nth item's residency span and producer→consumer
        flows (1 = every item). Iteration and transfer spans are not
        sampled — there is one per iteration, not one per item.
    max_spans:
        Upper bound on recorded span/instant/flow events; overflow is
        counted, never silent.
    """

    enabled: bool = True
    metrics: bool = True
    spans: bool = True
    span_sample: int = 1
    max_spans: int = 200_000

    def __post_init__(self) -> None:
        if self.span_sample < 1:
            raise ConfigError(
                f"span_sample must be >= 1, got {self.span_sample}"
            )
        if self.max_spans < 1:
            raise ConfigError(f"max_spans must be >= 1, got {self.max_spans}")


class NullTelemetryHub:
    """The disabled hub: every hook is a no-op, ``enabled`` is False.

    Hot paths guard with ``if obs.enabled:`` and never call further; the
    no-op methods exist so unguarded diagnostic code is still safe.
    """

    __slots__ = ()

    enabled = False

    def __bool__(self) -> bool:
        return False

    def bind(self, time_fn=None, run=None) -> "NullTelemetryHub":
        return self

    def on_put(self, *a, **k) -> None: ...
    def on_get(self, *a, **k) -> None: ...
    def on_skip(self, *a, **k) -> None: ...
    def on_free(self, *a, **k) -> None: ...
    def on_transfer(self, *a, **k) -> None: ...
    def on_sync(self, *a, **k) -> None: ...
    def on_fault(self, *a, **k) -> None: ...
    def on_scale(self, *a, **k) -> None: ...
    def on_finalize(self, *a, **k) -> None: ...

    def snapshot(self) -> dict:
        return {"enabled": False, "metrics": [], "spans": {}, "meta": {}}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullTelemetryHub>"


#: The module-level disabled hub every un-instrumented runtime shares.
NULL_HUB = NullTelemetryHub()


class TelemetryHub:
    """A live telemetry sink for one run."""

    enabled = True

    def __init__(self, config: Optional[TelemetryConfig] = None,
                 time_fn: Optional[Callable[[], float]] = None) -> None:
        self.config = config or TelemetryConfig()
        self.metrics = MetricsRegistry(time_fn)
        self.tracer = SpanTracer(sample=self.config.span_sample,
                                 max_spans=self.config.max_spans)
        self.run_meta: Dict[str, object] = {}
        self.t_end: Optional[float] = None
        #: thread name -> currently open iteration span id (span mode).
        self._iter_open: Dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------------
    def bind(self, time_fn: Optional[Callable[[], float]] = None,
             run: Optional[Dict[str, object]] = None) -> "TelemetryHub":
        """Attach the DES clock (metric timestamps) and run metadata."""
        if time_fn is not None:
            self.metrics.time_fn = time_fn
        if run:
            self.run_meta.update(run)
        return self

    # -- buffer path --------------------------------------------------------
    def on_put(self, buffer: str, kind: str, item, t: float) -> None:
        """An item landed in a channel/queue (called from ``commit_put``)."""
        cfg = self.config
        if cfg.metrics:
            m = self.metrics
            labels = {"buffer": buffer, "kind": kind}
            m.counter("repro_buffer_puts_total", labels).inc()
            m.gauge("repro_buffer_depth", labels).inc()
            m.gauge("repro_buffer_bytes_held", labels).inc(item.size)
        if cfg.spans:
            tracer = self.tracer
            item_id = item.item_id
            if tracer.sampled(item_id):
                parent = None
                for pid in item.parents:
                    parent = tracer.item_span.get(pid)
                    if parent is not None:
                        break
                span = tracer.begin(
                    name=f"ts={item.ts}", cat="item",
                    track=f"buffer/{buffer}", t=t, parent_id=parent,
                    args={"item_id": item_id, "producer": item.producer,
                          "size": item.size},
                )
                if span is not None:
                    tracer.item_span[item_id] = span.span_id
                tracer.flow("s", item_id, f"thread/{item.producer}", t)

    def on_get(self, buffer: str, kind: str, item, consumer: str,
               t: float) -> None:
        """A consumer committed a get (channel skip-read or queue pop)."""
        if self.config.metrics:
            self.metrics.counter(
                "repro_buffer_gets_total",
                {"buffer": buffer, "kind": kind, "consumer": consumer},
            ).inc()
        if self.config.spans and self.tracer.sampled(item.item_id):
            self.tracer.flow("f", item.item_id, f"thread/{consumer}", t)

    def on_skip(self, buffer: str, item_id: int, consumer: str,
                t: float) -> None:
        """A stored item was skipped over unread — the paper's waste."""
        if self.config.metrics:
            self.metrics.counter(
                "repro_buffer_skips_total",
                {"buffer": buffer, "consumer": consumer},
            ).inc()

    def on_free(self, buffer: str, kind: str, item, t: float,
                collector: str) -> None:
        """Storage reclaimed (GC identification or queue pop-release)."""
        if self.config.metrics:
            m = self.metrics
            labels = {"buffer": buffer, "kind": kind}
            m.gauge("repro_buffer_depth", labels).dec()
            m.gauge("repro_buffer_bytes_held", labels).dec(item.size)
            m.counter("repro_gc_reclaimed_items_total",
                      {"buffer": buffer, "gc": collector}).inc()
            m.counter("repro_gc_reclaimed_bytes_total",
                      {"buffer": buffer, "gc": collector}).inc(item.size)
        if self.config.spans:
            span_id = self.tracer.item_span.get(item.item_id)
            if span_id is not None:
                self.tracer.end_id(span_id, t)

    # -- network path -------------------------------------------------------
    def on_transfer(self, link: str, nbytes: int, duration: float,
                    t: float) -> None:
        """A link transfer completed (``t`` is the completion time)."""
        if self.config.metrics:
            m = self.metrics
            m.counter("repro_link_transfer_bytes_total", {"link": link}).inc(nbytes)
            m.counter("repro_link_transfers_total", {"link": link}).inc()
            m.histogram("repro_link_transfer_seconds", {"link": link}).observe(duration)
        if self.config.spans:
            span = self.tracer.begin(
                name=f"{nbytes}B", cat="transfer", track=f"link/{link}",
                t=t - duration, args={"bytes": nbytes},
            )
            self.tracer.end(span, t)

    # -- control path -------------------------------------------------------
    def on_sync(self, thread: str, t_start: float, t_end: float,
                compute: float, blocked: float, slept: float,
                stp: Optional[float], summary: Optional[float],
                target: Optional[float]) -> None:
        """One iteration closed at ``periodicity_sync()``.

        Records the §3.3 loop signals: observed current-STP, advertised
        summary-STP, throttle target, and realized throttle sleep.
        """
        if self.config.metrics:
            m = self.metrics
            labels = {"thread": thread}
            m.counter("repro_iterations_total", labels).inc()
            m.histogram("repro_iteration_seconds", labels).observe(t_end - t_start)
            m.counter("repro_compute_seconds_total", labels).inc(compute)
            m.counter("repro_blocked_seconds_total", labels).inc(blocked)
            if slept:
                m.counter("repro_throttle_sleep_seconds_total", labels).inc(slept)
            if stp is not None:
                m.gauge("repro_stp_current_seconds", labels).set(stp)
            if summary is not None:
                m.gauge("repro_stp_summary_seconds", labels).set(summary)
            if target is not None:
                m.gauge("repro_throttle_target_seconds", labels).set(target)
        if self.config.spans:
            args: Dict[str, object] = {"compute": compute, "blocked": blocked}
            if stp is not None:
                args["stp"] = stp
            if summary is not None:
                args["summary_stp"] = summary
            if slept:
                args["throttle_sleep"] = slept
            span = self.tracer.begin(name="iteration", cat="iteration",
                                     track=f"thread/{thread}", t=t_start,
                                     args=args)
            self.tracer.end(span, t_end)

    # -- fault path ---------------------------------------------------------
    def on_fault(self, phase: str, kind: str, target: str, t: float,
                 source: Optional[str] = None) -> None:
        """A fault lifecycle event: ``injected``/``symptom``/``recovered``."""
        if self.config.metrics:
            self.metrics.counter(
                "repro_fault_events_total", {"phase": phase, "kind": kind}
            ).inc()
        if self.config.spans:
            args: Dict[str, object] = {"kind": kind, "target": target}
            if source:
                args["source"] = source
            self.tracer.instant(f"{phase}:{kind}", cat="fault",
                                track="faults", t=t, args=args)

    # -- scaling path -------------------------------------------------------
    def on_scale(self, stage: str, action: str, replicas_from: int,
                 replicas_to: int, t: float, reason: str = "",
                 replica: Optional[str] = None) -> None:
        """A replicated stage changed size: ``out``/``in``/``restart``."""
        if self.config.metrics:
            m = self.metrics
            m.gauge("repro_replicas", {"stage": stage}).set(replicas_to)
            m.counter("repro_scale_events_total",
                      {"stage": stage, "action": action}).inc()
        if self.config.spans:
            args: Dict[str, object] = {
                "stage": stage, "from": replicas_from, "to": replicas_to,
            }
            if reason:
                args["reason"] = reason
            if replica:
                args["replica"] = replica
            self.tracer.instant(f"scale:{action}", cat="scale",
                                track="scaling", t=t, args=args)

    # -- run lifecycle ------------------------------------------------------
    def on_finalize(self, stats: Dict[str, dict], t: float) -> None:
        """Fold end-of-run runtime statistics into gauges; flush spans."""
        self.t_end = t
        if self.config.metrics:
            m = self.metrics
            engine = stats.get("engine", {})
            m.gauge("repro_engine_events_processed").set(
                engine.get("events_processed", 0))
            m.gauge("repro_sim_time_seconds").set(engine.get("now", t))
            for name, node in stats.get("nodes", {}).items():
                labels = {"node": name}
                m.gauge("repro_node_mem_peak_bytes", labels).set(node["mem_peak"])
                m.gauge("repro_node_busy_seconds", labels).set(node["busy_time"])
            network = stats.get("network", {})
            m.gauge("repro_network_bytes_total").set(
                network.get("total_bytes", 0))
        if self.config.spans:
            self.tracer.close_open_spans(t)

    # -- export -------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-data view of the whole hub (picklable, JSON-able)."""
        return {
            "enabled": True,
            "meta": dict(self.run_meta),
            "t_end": self.t_end,
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TelemetryHub metrics={len(self.metrics)} "
                f"spans={self.tracer.stats()['spans']}>")


#: What call sites may hand to :func:`resolve_hub`.
TelemetryLike = Union[None, bool, TelemetryConfig, TelemetryHub,
                      NullTelemetryHub]


def resolve_hub(value: TelemetryLike) -> Union[TelemetryHub, NullTelemetryHub]:
    """Coerce a config-surface value into a live (or null) hub.

    ``None``/``False`` → :data:`NULL_HUB`; ``True`` → a fresh default
    hub; a :class:`TelemetryConfig` → a hub built from it (or
    :data:`NULL_HUB` when it is disabled); an existing hub passes
    through so callers can keep a handle for post-run export.
    """
    if value is None or value is False:
        return NULL_HUB
    if value is True:
        return TelemetryHub()
    if isinstance(value, TelemetryConfig):
        return TelemetryHub(value) if value.enabled else NULL_HUB
    if isinstance(value, (TelemetryHub, NullTelemetryHub)):
        return value
    raise ConfigError(
        f"telemetry must be a bool, TelemetryConfig, or TelemetryHub; "
        f"got {value!r}"
    )
