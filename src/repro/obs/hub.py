"""The telemetry hub: one object owning a run's metrics and spans.

Design constraints (ISSUE 5, tightened by ISSUE 7):

* **zero overhead when disabled** — a runtime without telemetry holds
  the module-level :data:`NULL_HUB` singleton, whose ``enabled`` is
  False; every instrumentation point is guarded by one attribute check
  (``if obs.enabled:``), so the disabled hot path pays a single load +
  branch and the micro-bench gate in ``benchmarks/check_regression.py``
  stays within threshold;
* **cheap when enabled** — hot sites resolve *fixed-slot handles* once
  at wiring time (``put_handle``/``get_handle``/...); the per-operation
  cost is then one or two flat-array adds into the registry's
  :class:`~repro.obs.metrics.SlotBank` — no ``(name, labels)`` dict
  lookup, no ``str()`` churn, no timestamp call. Label resolution and
  export are deferred to ``snapshot()``. The regression gate pins
  telemetry-on within 3× of telemetry-off through a realistic site
  (``telemetry_on_over_off_ratio``);
* **observation must not perturb** — hook bodies only *read* runtime
  state and write hub-private structures; they never touch the engine
  calendar, the RNG registry, or ARU state, so a telemetry-on run is
  bit-identical to a telemetry-off run (asserted by
  ``tests/obs/test_integration.py`` via ``metrics_fingerprint``);
* **sampling-aware** — item spans/flows are kept for every Nth item
  (:attr:`TelemetryConfig.span_sample`), and the span store is bounded
  with an explicit dropped counter.

The hub exposes two API tiers. The *semantic* hooks (``on_put``,
``on_sync``, ``on_fault``, ...) remain for cold sites and back-compat —
they now route through cached handles themselves, so even hook-based
instrumentation resolves labels once. Hot sites should instead request
a handle at wiring time and pair it with the matching ``span_*`` helper
behind the hub's precomputed ``metrics_on``/``spans_on`` flags. The
registry and tracer stay reachable for ad-hoc instruments
(``hub.metrics.counter(...)``) and for the exporters in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.obs.metrics import (
    NOOP_HANDLE,
    CounterHandle,
    MetricsRegistry,
    PairHandle,
)
from repro.obs.spans import SpanTracer


@dataclass(frozen=True)
class TelemetryConfig:
    """Declarative description of one run's telemetry.

    Attributes
    ----------
    enabled:
        Master switch; False resolves to :data:`NULL_HUB`.
    metrics / spans:
        Record the metric registry / the span trace. Both default on;
        turning ``spans`` off keeps counters at a fraction of the
        memory for long runs — that is the "telemetry you can leave
        on" configuration (see docs/observability.md).
    span_sample:
        Keep every Nth item's residency span and producer→consumer
        flows (1 = every item). Iteration and transfer spans are not
        sampled — there is one per iteration, not one per item.
    max_spans:
        Upper bound on recorded span/instant/flow events; overflow is
        counted, never silent.
    """

    enabled: bool = True
    metrics: bool = True
    spans: bool = True
    span_sample: int = 1
    max_spans: int = 200_000

    def __post_init__(self) -> None:
        if self.span_sample < 1:
            raise ConfigError(
                f"span_sample must be >= 1, got {self.span_sample}"
            )
        if self.max_spans < 1:
            raise ConfigError(f"max_spans must be >= 1, got {self.max_spans}")


class _SyncHandle:
    """Preresolved slots for one thread's ``periodicity_sync`` close.

    One iteration writes: iteration count, iteration-length histogram,
    compute/blocked second totals, optional throttle-sleep total, and
    the three control-loop gauges (current STP, summary STP, throttle
    target). Gauge slots start NaN and are only exported once written,
    matching the legacy "set only when present" hook behaviour.
    """

    __slots__ = ("_values", "_iters", "_hist", "_compute", "_blocked",
                 "_slept", "_stp", "_summary", "_target")

    def __init__(self, values, iters, hist, compute, blocked, slept,
                 stp, summary, target) -> None:
        self._values = values
        self._iters = iters
        self._hist = hist
        self._compute = compute
        self._blocked = blocked
        self._slept = slept
        self._stp = stp
        self._summary = summary
        self._target = target

    def update(self, t_start: float, t_end: float, compute: float,
               blocked: float, slept: float, stp: Optional[float],
               summary: Optional[float], target: Optional[float]) -> None:
        values = self._values
        values[self._iters] += 1.0
        self._hist.observe(t_end - t_start)
        values[self._compute] += compute
        values[self._blocked] += blocked
        if slept:
            values[self._slept] += slept
        if stp is not None:
            values[self._stp] = stp
        if summary is not None:
            values[self._summary] = summary
        if target is not None:
            values[self._target] = target


class _TransferHandle:
    """Preresolved slots for one link: bytes + count + duration histogram."""

    __slots__ = ("_values", "_bytes", "_count", "_hist")

    def __init__(self, values, bytes_slot, count_slot, hist) -> None:
        self._values = values
        self._bytes = bytes_slot
        self._count = count_slot
        self._hist = hist

    def update(self, nbytes: float, duration: float) -> None:
        values = self._values
        values[self._bytes] += nbytes
        values[self._count] += 1.0
        self._hist.observe(duration)


class NullTelemetryHub:
    """The disabled hub: every hook is a no-op, ``enabled`` is False.

    Hot paths guard with ``if obs.enabled:`` and never call further; the
    no-op methods exist so unguarded diagnostic code is still safe, and
    the ``*_handle`` factories hand back the shared
    :data:`~repro.obs.metrics.NOOP_HANDLE` so wiring code is branch-free.
    """

    __slots__ = ()

    enabled = False
    metrics_on = False
    spans_on = False

    def __bool__(self) -> bool:
        return False

    def bind(self, time_fn=None, run=None) -> "NullTelemetryHub":
        return self

    def on_put(self, *a, **k) -> None: ...
    def on_get(self, *a, **k) -> None: ...
    def on_skip(self, *a, **k) -> None: ...
    def on_free(self, *a, **k) -> None: ...
    def on_transfer(self, *a, **k) -> None: ...
    def on_sync(self, *a, **k) -> None: ...
    def on_fault(self, *a, **k) -> None: ...
    def on_scale(self, *a, **k) -> None: ...
    def on_tenant(self, *a, **k) -> None: ...
    def on_arbiter(self, *a, **k) -> None: ...
    def on_finalize(self, *a, **k) -> None: ...

    def put_handle(self, *a, **k):
        return NOOP_HANDLE

    def get_handle(self, *a, **k):
        return NOOP_HANDLE

    def skip_handle(self, *a, **k):
        return NOOP_HANDLE

    def free_handle(self, *a, **k):
        return NOOP_HANDLE

    def transfer_handle(self, *a, **k):
        return NOOP_HANDLE

    def sync_handle(self, *a, **k):
        return NOOP_HANDLE

    def fault_handle(self, *a, **k):
        return NOOP_HANDLE

    def tenant_handle(self, *a, **k):
        return NOOP_HANDLE

    def span_put(self, *a, **k) -> None: ...
    def span_get(self, *a, **k) -> None: ...
    def span_free(self, *a, **k) -> None: ...
    def span_transfer(self, *a, **k) -> None: ...
    def span_sync(self, *a, **k) -> None: ...
    def span_fault(self, *a, **k) -> None: ...

    def snapshot(self) -> dict:
        return {"enabled": False, "metrics": [], "spans": {}, "meta": {}}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullTelemetryHub>"


#: The module-level disabled hub every un-instrumented runtime shares.
NULL_HUB = NullTelemetryHub()


class TelemetryHub:
    """A live telemetry sink for one run."""

    enabled = True

    def __init__(self, config: Optional[TelemetryConfig] = None,
                 time_fn: Optional[Callable[[], float]] = None) -> None:
        self.config = config or TelemetryConfig()
        self.metrics = MetricsRegistry(time_fn)
        self.tracer = SpanTracer(sample=self.config.span_sample,
                                 max_spans=self.config.max_spans)
        self.run_meta: Dict[str, object] = {}
        self.t_end: Optional[float] = None
        #: Precomputed mode flags: hot sites read these attributes once
        #: per call instead of chasing ``self.config.metrics``.
        self.metrics_on: bool = self.config.metrics
        self.spans_on: bool = self.config.spans
        #: Wiring-time handle cache, keyed on the site identity tuple.
        self._handles: Dict[Tuple, object] = {}
        #: thread name -> currently open iteration span id (span mode).
        self._iter_open: Dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------------
    def bind(self, time_fn: Optional[Callable[[], float]] = None,
             run: Optional[Dict[str, object]] = None) -> "TelemetryHub":
        """Attach the DES clock (metric timestamps) and run metadata."""
        if time_fn is not None:
            self.metrics.time_fn = time_fn
        if run:
            self.run_meta.update(run)
        return self

    # -- fixed-slot handle wiring ------------------------------------------
    # Each factory is idempotent per site identity and resolves labels
    # exactly once; with metrics off it returns NOOP_HANDLE so callers
    # can wire unconditionally (spans-only mode creates zero instruments).

    def put_handle(self, buffer: str, kind: str):
        """Handle for ``commit_put``: ``.add(1, item.size)`` per put."""
        if not self.metrics_on:
            return NOOP_HANDLE
        key = ("put", buffer, kind)
        handle = self._handles.get(key)
        if handle is None:
            bank = self.metrics.bank
            labels = {"buffer": buffer, "kind": kind}
            puts = bank.counter_slot("repro_buffer_puts_total", labels)
            put_bytes = bank.hidden_slot("repro_buffer_put_bytes", labels)
            bank.derive_gauge("repro_buffer_depth", labels, plus=[puts])
            bank.derive_gauge("repro_buffer_bytes_held", labels,
                              plus=[put_bytes])
            handle = PairHandle(bank.values, puts, put_bytes)
            self._handles[key] = handle
        return handle

    def get_handle(self, buffer: str, kind: str, consumer: str):
        """Handle for ``commit_get``: ``.inc()`` per committed read."""
        if not self.metrics_on:
            return NOOP_HANDLE
        key = ("get", buffer, kind, consumer)
        handle = self._handles.get(key)
        if handle is None:
            bank = self.metrics.bank
            slot = bank.counter_slot(
                "repro_buffer_gets_total",
                {"buffer": buffer, "kind": kind, "consumer": consumer},
            )
            handle = CounterHandle(bank.values, slot)
            self._handles[key] = handle
        return handle

    def skip_handle(self, buffer: str, consumer: str):
        """Handle for skip-reads: ``.inc()`` per item skipped unread."""
        if not self.metrics_on:
            return NOOP_HANDLE
        key = ("skip", buffer, consumer)
        handle = self._handles.get(key)
        if handle is None:
            bank = self.metrics.bank
            slot = bank.counter_slot(
                "repro_buffer_skips_total",
                {"buffer": buffer, "consumer": consumer},
            )
            handle = CounterHandle(bank.values, slot)
            self._handles[key] = handle
        return handle

    def free_handle(self, buffer: str, kind: str, collector: str):
        """Handle for ``_free``: ``.add(1, item.size)`` per reclaim.

        Also links the reclaim slots as the *minus* side of the derived
        ``repro_buffer_depth`` / ``repro_buffer_bytes_held`` gauges, so
        depth is materialised as puts − frees at export time instead of
        paying a second read-modify-write pair per operation.
        """
        if not self.metrics_on:
            return NOOP_HANDLE
        key = ("free", buffer, kind, collector)
        handle = self._handles.get(key)
        if handle is None:
            bank = self.metrics.bank
            gc_labels = {"buffer": buffer, "gc": collector}
            items = bank.counter_slot("repro_gc_reclaimed_items_total",
                                      gc_labels)
            nbytes = bank.counter_slot("repro_gc_reclaimed_bytes_total",
                                       gc_labels)
            buf_labels = {"buffer": buffer, "kind": kind}
            bank.derive_gauge("repro_buffer_depth", buf_labels, minus=[items])
            bank.derive_gauge("repro_buffer_bytes_held", buf_labels,
                              minus=[nbytes])
            handle = PairHandle(bank.values, items, nbytes)
            self._handles[key] = handle
        return handle

    def transfer_handle(self, link: str):
        """Handle for one link: ``.update(nbytes, duration)`` per transfer."""
        if not self.metrics_on:
            return NOOP_HANDLE
        key = ("transfer", link)
        handle = self._handles.get(key)
        if handle is None:
            bank = self.metrics.bank
            labels = {"link": link}
            nbytes = bank.counter_slot("repro_link_transfer_bytes_total",
                                       labels)
            count = bank.counter_slot("repro_link_transfers_total", labels)
            hist = bank.histogram_handle("repro_link_transfer_seconds", labels)
            handle = _TransferHandle(bank.values, nbytes, count, hist)
            self._handles[key] = handle
        return handle

    def sync_handle(self, thread: str):
        """Handle for one thread's iteration close (``periodicity_sync``)."""
        if not self.metrics_on:
            return NOOP_HANDLE
        key = ("sync", thread)
        handle = self._handles.get(key)
        if handle is None:
            bank = self.metrics.bank
            labels = {"thread": thread}
            handle = _SyncHandle(
                bank.values,
                bank.counter_slot("repro_iterations_total", labels),
                bank.histogram_handle("repro_iteration_seconds", labels),
                bank.counter_slot("repro_compute_seconds_total", labels),
                bank.counter_slot("repro_blocked_seconds_total", labels),
                bank.counter_slot("repro_throttle_sleep_seconds_total",
                                  labels),
                bank.gauge_slot("repro_stp_current_seconds", labels),
                bank.gauge_slot("repro_stp_summary_seconds", labels),
                bank.gauge_slot("repro_throttle_target_seconds", labels),
            )
            self._handles[key] = handle
        return handle

    def fault_handle(self, phase: str, kind: str):
        """Handle for one fault lifecycle cell: ``.inc()`` per event."""
        if not self.metrics_on:
            return NOOP_HANDLE
        key = ("fault", phase, kind)
        handle = self._handles.get(key)
        if handle is None:
            bank = self.metrics.bank
            slot = bank.counter_slot("repro_fault_events_total",
                                     {"phase": phase, "kind": kind})
            handle = CounterHandle(bank.values, slot)
            self._handles[key] = handle
        return handle

    def tenant_handle(self, tenant: str):
        """Handle for one tenant's sink deliveries: ``.inc()`` per frame."""
        if not self.metrics_on:
            return NOOP_HANDLE
        key = ("tenant", tenant)
        handle = self._handles.get(key)
        if handle is None:
            bank = self.metrics.bank
            slot = bank.counter_slot("repro_tenant_deliveries_total",
                                     {"tenant": tenant})
            handle = CounterHandle(bank.values, slot)
            self._handles[key] = handle
        return handle

    # -- span helpers -------------------------------------------------------
    # The span side of each semantic hook, callable directly by hot sites
    # behind ``if obs.spans_on:`` so metrics-only runs skip the frames.

    def span_put(self, buffer: str, item, t: float) -> None:
        tracer = self.tracer
        item_id = item.item_id
        if tracer.sampled(item_id):
            parent = None
            for pid in item.parents:
                parent = tracer.item_span.get(pid)
                if parent is not None:
                    break
            span = tracer.begin(
                name=f"ts={item.ts}", cat="item",
                track=f"buffer/{buffer}", t=t, parent_id=parent,
                args={"item_id": item_id, "producer": item.producer,
                      "size": item.size},
            )
            if span is not None:
                tracer.item_span[item_id] = span.span_id
            tracer.flow("s", item_id, f"thread/{item.producer}", t)

    def span_get(self, item, consumer: str, t: float) -> None:
        if self.tracer.sampled(item.item_id):
            self.tracer.flow("f", item.item_id, f"thread/{consumer}", t)

    def span_free(self, item, t: float) -> None:
        span_id = self.tracer.item_span.get(item.item_id)
        if span_id is not None:
            self.tracer.end_id(span_id, t)

    def span_transfer(self, link: str, nbytes: int, duration: float,
                      t: float) -> None:
        span = self.tracer.begin(
            name=f"{nbytes}B", cat="transfer", track=f"link/{link}",
            t=t - duration, args={"bytes": nbytes},
        )
        self.tracer.end(span, t)

    def span_sync(self, thread: str, t_start: float, t_end: float,
                  compute: float, blocked: float, slept: float,
                  stp: Optional[float], summary: Optional[float]) -> None:
        args: Dict[str, object] = {"compute": compute, "blocked": blocked}
        if stp is not None:
            args["stp"] = stp
        if summary is not None:
            args["summary_stp"] = summary
        if slept:
            args["throttle_sleep"] = slept
        span = self.tracer.begin(name="iteration", cat="iteration",
                                 track=f"thread/{thread}", t=t_start,
                                 args=args)
        self.tracer.end(span, t_end)

    def span_fault(self, phase: str, kind: str, target: str, t: float,
                   source: Optional[str] = None) -> None:
        args: Dict[str, object] = {"kind": kind, "target": target}
        if source:
            args["source"] = source
        self.tracer.instant(f"{phase}:{kind}", cat="fault",
                            track="faults", t=t, args=args)

    # -- buffer path --------------------------------------------------------
    def on_put(self, buffer: str, kind: str, item, t: float) -> None:
        """An item landed in a channel/queue (called from ``commit_put``)."""
        if self.metrics_on:
            self.put_handle(buffer, kind).add(1.0, item.size)
        if self.spans_on:
            self.span_put(buffer, item, t)

    def on_get(self, buffer: str, kind: str, item, consumer: str,
               t: float) -> None:
        """A consumer committed a get (channel skip-read or queue pop)."""
        if self.metrics_on:
            self.get_handle(buffer, kind, consumer).inc()
        if self.spans_on:
            self.span_get(item, consumer, t)

    def on_skip(self, buffer: str, item_id: int, consumer: str,
                t: float) -> None:
        """A stored item was skipped over unread — the paper's waste."""
        if self.metrics_on:
            self.skip_handle(buffer, consumer).inc()

    def on_free(self, buffer: str, kind: str, item, t: float,
                collector: str) -> None:
        """Storage reclaimed (GC identification or queue pop-release)."""
        if self.metrics_on:
            self.free_handle(buffer, kind, collector).add(1.0, item.size)
        if self.spans_on:
            self.span_free(item, t)

    # -- network path -------------------------------------------------------
    def on_transfer(self, link: str, nbytes: int, duration: float,
                    t: float) -> None:
        """A link transfer completed (``t`` is the completion time)."""
        if self.metrics_on:
            self.transfer_handle(link).update(nbytes, duration)
        if self.spans_on:
            self.span_transfer(link, nbytes, duration, t)

    # -- control path -------------------------------------------------------
    def on_sync(self, thread: str, t_start: float, t_end: float,
                compute: float, blocked: float, slept: float,
                stp: Optional[float], summary: Optional[float],
                target: Optional[float]) -> None:
        """One iteration closed at ``periodicity_sync()``.

        Records the §3.3 loop signals: observed current-STP, advertised
        summary-STP, throttle target, and realized throttle sleep.
        """
        if self.metrics_on:
            self.sync_handle(thread).update(
                t_start, t_end, compute, blocked, slept, stp, summary, target
            )
        if self.spans_on:
            self.span_sync(thread, t_start, t_end, compute, blocked, slept,
                           stp, summary)

    # -- fault path ---------------------------------------------------------
    def on_fault(self, phase: str, kind: str, target: str, t: float,
                 source: Optional[str] = None) -> None:
        """A fault lifecycle event: ``injected``/``symptom``/``recovered``."""
        if self.metrics_on:
            self.fault_handle(phase, kind).inc()
        if self.spans_on:
            self.span_fault(phase, kind, target, t, source)

    # -- scaling path -------------------------------------------------------
    def on_scale(self, stage: str, action: str, replicas_from: int,
                 replicas_to: int, t: float, reason: str = "",
                 replica: Optional[str] = None) -> None:
        """A replicated stage changed size: ``out``/``in``/``restart``.

        Stays on ad-hoc instruments: scale events are O(decisions), not
        O(items), so preresolved slots would buy nothing.
        """
        if self.metrics_on:
            m = self.metrics
            m.gauge("repro_replicas", {"stage": stage}).set(replicas_to)
            m.counter("repro_scale_events_total",
                      {"stage": stage, "action": action}).inc()
        if self.spans_on:
            args: Dict[str, object] = {
                "stage": stage, "from": replicas_from, "to": replicas_to,
            }
            if reason:
                args["reason"] = reason
            if replica:
                args["replica"] = replica
            self.tracer.instant(f"scale:{action}", cat="scale",
                                track="scaling", t=t, args=args)

    # -- tenancy path -------------------------------------------------------
    def on_tenant(self, phase: str, tenant: str, t: float,
                  detail: str = "") -> None:
        """A tenant lifecycle event: admitted/queued/rejected/departed/
        evicted/replaced. O(tenant transitions), so ad-hoc instruments."""
        if self.metrics_on:
            self.metrics.counter("repro_tenant_events_total",
                                 {"phase": phase}).inc()
        if self.spans_on:
            args: Dict[str, object] = {"tenant": tenant}
            if detail:
                args["detail"] = detail
            self.tracer.instant(f"tenant:{phase}", cat="tenant",
                                track="tenants", t=t, args=args)

    #: Arbitration action -> the counter it increments. Explicit names
    #: (not a label on one counter) so dashboards alert on revocations
    #: and denials without PromQL label gymnastics.
    _ARBITER_COUNTERS = {
        "revoke": "repro_arbiter_revocations_total",
        "migrate": "repro_arbiter_migrations_total",
        "deny": "repro_arbiter_grant_denials_total",
        "grant": "repro_arbiter_grants_total",
        "grow": "repro_arbiter_budget_changes_total",
        "shrink": "repro_arbiter_budget_changes_total",
    }

    def on_arbiter(self, action: str, tenant: str, t: float,
                   detail: str = "") -> None:
        """An arbitration act: revoke/migrate/grow/shrink/grant/deny.

        O(arbiter decisions) — a few per arbitration period — so ad-hoc
        instruments, same as the scale and tenant paths."""
        if self.metrics_on:
            name = self._ARBITER_COUNTERS.get(
                action, "repro_arbiter_actions_total")
            self.metrics.counter(name, {"tenant": tenant}).inc()
        if self.spans_on:
            args: Dict[str, object] = {"tenant": tenant}
            if detail:
                args["detail"] = detail
            self.tracer.instant(f"arbiter:{action}", cat="arbiter",
                                track="tenants", t=t, args=args)

    # -- run lifecycle ------------------------------------------------------
    def on_finalize(self, stats: Dict[str, dict], t: float) -> None:
        """Fold end-of-run runtime statistics into gauges; flush spans.

        Runs once per run (cold), so it uses ad-hoc instruments too.
        """
        self.t_end = t
        if self.metrics_on:
            m = self.metrics
            engine = stats.get("engine", {})
            m.gauge("repro_engine_events_processed").set(
                engine.get("events_processed", 0))
            m.gauge("repro_sim_time_seconds").set(engine.get("now", t))
            for name, node in stats.get("nodes", {}).items():
                labels = {"node": name}
                m.gauge("repro_node_mem_peak_bytes", labels).set(node["mem_peak"])
                m.gauge("repro_node_busy_seconds", labels).set(node["busy_time"])
            network = stats.get("network", {})
            m.gauge("repro_network_bytes_total").set(
                network.get("total_bytes", 0))
        if self.spans_on:
            self.tracer.close_open_spans(t)

    # -- export -------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-data view of the whole hub (picklable, JSON-able)."""
        return {
            "enabled": True,
            "meta": dict(self.run_meta),
            "t_end": self.t_end,
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TelemetryHub metrics={len(self.metrics)} "
                f"spans={self.tracer.stats()['spans']}>")


#: What call sites may hand to :func:`resolve_hub`.
TelemetryLike = Union[None, bool, TelemetryConfig, TelemetryHub,
                      NullTelemetryHub]


def resolve_hub(value: TelemetryLike) -> Union[TelemetryHub, NullTelemetryHub]:
    """Coerce a config-surface value into a live (or null) hub.

    ``None``/``False`` → :data:`NULL_HUB`; ``True`` → a fresh default
    hub; a :class:`TelemetryConfig` → a hub built from it (or
    :data:`NULL_HUB` when it is disabled); an existing hub passes
    through so callers can keep a handle for post-run export.
    """
    if value is None or value is False:
        return NULL_HUB
    if value is True:
        return TelemetryHub()
    if isinstance(value, TelemetryConfig):
        return TelemetryHub(value) if value.enabled else NULL_HUB
    if isinstance(value, (TelemetryHub, NullTelemetryHub)):
        return value
    raise ConfigError(
        f"telemetry must be a bool, TelemetryConfig, or TelemetryHub; "
        f"got {value!r}"
    )
