"""``repro.obs`` — telemetry for the streaming runtime.

A zero-overhead-when-disabled observability subsystem with three parts:

* **metrics** (:mod:`repro.obs.metrics`): Counter / Gauge / Histogram
  instruments keyed on ``(name, labels)``, timestamped with the DES
  clock;
* **spans** (:mod:`repro.obs.spans`): causal tracing of items along the
  pipeline (Digitizer → ... → GUI), with parent span ids piggybacked
  along the data path the same way the summary-STP is, plus fault
  instants and producer→consumer flow arrows;
* **exporters** (:mod:`repro.obs.export`): Prometheus text format,
  Chrome-trace/Perfetto JSON, and a JSONL stream; rendered for humans
  by :mod:`repro.obs.summary` and the ``repro obs`` CLI subcommand.

The hub (:class:`TelemetryHub`) is the single object call sites talk
to. Disabled runtimes share the :data:`NULL_HUB` null object, so every
instrumentation point costs one attribute check when telemetry is off —
see ``benchmarks/check_regression.py`` for the gate.

Enable per run via ``RuntimeConfig(telemetry=True)``,
``repro.run_experiment(ExperimentSpec(..., telemetry=True))``, or the
``--telemetry`` CLI flag.
"""

from __future__ import annotations

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    iter_jsonl,
    prometheus_text,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.hub import (
    NULL_HUB,
    NullTelemetryHub,
    TelemetryConfig,
    TelemetryHub,
    resolve_hub,
)
from repro.obs.merge import hub_from_snapshot, merge_snapshots
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    canonical_labels,
)
from repro.obs.spans import Flow, Instant, Span, SpanTracer
from repro.obs.summary import summary_from_records, summary_table

__all__ = [
    "NULL_HUB",
    "NullTelemetryHub",
    "TelemetryConfig",
    "TelemetryHub",
    "resolve_hub",
    "merge_snapshots",
    "hub_from_snapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "canonical_labels",
    "Span",
    "Instant",
    "Flow",
    "SpanTracer",
    "prometheus_text",
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "iter_jsonl",
    "write_jsonl",
    "read_jsonl",
    "summary_table",
    "summary_from_records",
]
