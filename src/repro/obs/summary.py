"""Human-readable summary rendering for a telemetry hub or its exports.

Used by the ``repro obs`` CLI subcommand and by ``--telemetry`` run
modes to print a closing table: per-thread iteration/STP figures,
per-buffer put/get/skip/reclaim totals, link traffic, and fault counts.
Works either from a live hub or from a JSONL export re-read from disk,
so the CLI can summarize a run that happened in another process.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.obs.hub import TelemetryHub


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.6g}"


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return out


def _metric_rows(samples: List[dict]) -> Dict[str, Dict[tuple, dict]]:
    """Group metric samples by name, keyed on the sorted label tuple."""
    grouped: Dict[str, Dict[tuple, dict]] = defaultdict(dict)
    for s in samples:
        key = tuple(sorted(s.get("labels", {}).items()))
        grouped[s["name"]][key] = s
    return grouped


def _label(key: tuple, field: str) -> str:
    return dict(key).get(field, "")


def summary_from_samples(samples: List[dict], span_stats: dict = None) -> str:
    """Render the summary table from plain metric samples (JSONL shape)."""
    grouped = _metric_rows(samples)
    sections: List[str] = []

    threads = sorted({
        _label(k, "thread")
        for k in grouped.get("repro_iterations_total", {})
    })
    if threads:
        rows = []
        for th in threads:
            key = (("thread", th),)
            iters = grouped["repro_iterations_total"].get(key, {}).get("value", 0)
            hist = grouped.get("repro_iteration_seconds", {}).get(key, {})
            mean = (hist.get("sum", 0.0) / hist["count"]) if hist.get("count") else 0.0
            stp = grouped.get("repro_stp_current_seconds", {}).get(key, {}).get("value")
            summ = grouped.get("repro_stp_summary_seconds", {}).get(key, {}).get("value")
            slept = grouped.get("repro_throttle_sleep_seconds_total", {}).get(key, {}).get("value", 0.0)
            rows.append([
                th, _fmt(iters), f"{mean:.4f}",
                f"{stp:.4f}" if stp is not None else "-",
                f"{summ:.4f}" if summ is not None else "-",
                f"{slept:.3f}",
            ])
        sections.append("threads")
        sections.extend(_table(
            ["thread", "iters", "mean_period", "stp", "summary_stp", "slept"],
            rows))

    buffers = sorted({
        _label(k, "buffer") for k in grouped.get("repro_buffer_puts_total", {})
    })
    if buffers:
        rows = []
        for buf in buffers:
            def total(name, match=buf, field="buffer"):
                return sum(
                    s.get("value", 0) for k, s in grouped.get(name, {}).items()
                    if _label(k, field) == match
                )
            rows.append([
                buf,
                _fmt(total("repro_buffer_puts_total")),
                _fmt(total("repro_buffer_gets_total")),
                _fmt(total("repro_buffer_skips_total")),
                _fmt(total("repro_gc_reclaimed_items_total")),
                _fmt(total("repro_buffer_depth")),
            ])
        sections.append("")
        sections.append("buffers")
        sections.extend(_table(
            ["buffer", "puts", "gets", "skips", "reclaimed", "depth_end"],
            rows))

    links = sorted({
        _label(k, "link")
        for k in grouped.get("repro_link_transfers_total", {})
    })
    if links:
        rows = []
        for link in links:
            key = (("link", link),)
            n = grouped["repro_link_transfers_total"].get(key, {}).get("value", 0)
            nbytes = grouped.get("repro_link_transfer_bytes_total", {}).get(key, {}).get("value", 0)
            rows.append([link, _fmt(n), _fmt(nbytes)])
        sections.append("")
        sections.append("links")
        sections.extend(_table(["link", "transfers", "bytes"], rows))

    faults = grouped.get("repro_fault_events_total", {})
    if faults:
        rows = [
            [_label(k, "phase"), _label(k, "kind"), _fmt(s.get("value", 0))]
            for k, s in sorted(faults.items())
        ]
        sections.append("")
        sections.append("faults")
        sections.extend(_table(["phase", "kind", "count"], rows))

    if span_stats:
        if sections:
            sections.append("")
        sections.append(
            "spans: {spans} recorded, {instants} instants, {flows} flows, "
            "{dropped} dropped (sample=1/{sample})".format(**span_stats)
        )

    if not sections:
        return "(no telemetry recorded)"
    return "\n".join(sections)


def summary_table(hub: TelemetryHub) -> str:
    """Render the closing summary table from a live hub."""
    return summary_from_samples(hub.metrics.snapshot(), hub.tracer.stats())


def summary_from_records(records: List[dict]) -> str:
    """Render the summary table from a re-read JSONL export."""
    samples = [r for r in records if r.get("rec") == "metric"]
    meta = next((r for r in records if r.get("rec") == "meta"), None)
    span_stats = None
    if meta and "spans" in meta:
        span_stats = {k: meta.get(k, 0)
                      for k in ("spans", "instants", "flows", "dropped", "sample")}
    return summary_from_samples(samples, span_stats)
