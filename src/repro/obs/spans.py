"""Span tracing: the causal path of items through the pipeline.

A span is one timed slice on a named *track* (a thread, a channel, a
network link). The tracer records three event families, all stamped
with the DES clock:

* **spans** — ``begin``/``end`` slices (thread iterations, item
  residencies, link transfers). Item spans carry a ``parent_id``
  pointing at the span of the first input item of the producing
  iteration — the span id is piggybacked along the data path exactly
  like the summary-STP, so an item's ancestry chain Digitizer→...→GUI
  can be walked without re-deriving causality from the trace;
* **instants** — zero-duration markers (fault injected/detected/
  recovered events);
* **flows** — producer→consumer arrows keyed on the item id, rendered
  by Perfetto as arrows between the enclosing slices.

The tracer is bounded: past ``max_spans`` recorded events, new spans
are counted in :attr:`SpanTracer.dropped` instead of stored — a
truncated export says so rather than silently looking complete.
Sampling (``sample`` > 1) keeps every Nth item path end to end: the
decision is a pure function of the item id, so the producer-side flow
start and the consumer-side flow finish always agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Span:
    """One timed slice on a track."""

    span_id: int
    name: str
    cat: str
    track: str
    t_start: float
    t_end: Optional[float] = None
    parent_id: Optional[int] = None
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.t_end is None

    @property
    def duration(self) -> float:
        return (self.t_end - self.t_start) if self.t_end is not None else 0.0


@dataclass
class Instant:
    """A zero-duration marker on a track."""

    name: str
    cat: str
    track: str
    t: float
    args: Dict[str, object] = field(default_factory=dict)


@dataclass
class Flow:
    """One end of a producer→consumer arrow, keyed on the item id."""

    phase: str  # "s" (start) or "f" (finish)
    flow_id: int
    track: str
    t: float
    name: str = "item"


class SpanTracer:
    """Bounded, sampling-aware recorder of spans, instants, and flows."""

    def __init__(self, sample: int = 1, max_spans: int = 200_000) -> None:
        if sample < 1:
            raise ValueError(f"span sample must be >= 1, got {sample}")
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.sample = sample
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.flows: List[Flow] = []
        #: Spans not recorded because the cap was reached.
        self.dropped = 0
        self._next_id = 1
        #: item_id -> span_id of the item's residency span (the causal
        #: chain walks these).
        self.item_span: Dict[int, int] = {}
        self._by_id: Dict[int, Span] = {}

    # ------------------------------------------------------------------
    def sampled(self, item_id: int) -> bool:
        """Whether the item's path is kept under the sampling rate."""
        return item_id % self.sample == 0

    @property
    def recorded(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.flows)

    def _room(self) -> bool:
        if self.recorded >= self.max_spans:
            self.dropped += 1
            return False
        return True

    # ------------------------------------------------------------------
    def begin(self, name: str, cat: str, track: str, t: float,
              parent_id: Optional[int] = None,
              args: Optional[Dict[str, object]] = None) -> Optional[Span]:
        """Open a span; returns None when the cap swallowed it."""
        if not self._room():
            return None
        span = Span(span_id=self._next_id, name=name, cat=cat, track=track,
                    t_start=t, parent_id=parent_id, args=args or {})
        self._next_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def end(self, span: Optional[Span], t: float) -> None:
        if span is not None and span.t_end is None:
            span.t_end = t

    def end_id(self, span_id: int, t: float) -> None:
        self.end(self._by_id.get(span_id), t)

    def get(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def instant(self, name: str, cat: str, track: str, t: float,
                args: Optional[Dict[str, object]] = None) -> None:
        if self._room():
            self.instants.append(Instant(name, cat, track, t, args or {}))

    def flow(self, phase: str, flow_id: int, track: str, t: float,
             name: str = "item") -> None:
        if self._room():
            self.flows.append(Flow(phase, flow_id, track, t, name))

    # ------------------------------------------------------------------
    def close_open_spans(self, t: float) -> int:
        """Close every still-open span at ``t`` (end-of-run flush)."""
        closed = 0
        for span in self.spans:
            if span.t_end is None:
                span.t_end = t
                closed += 1
        return closed

    def ancestry(self, item_id: int) -> List[Span]:
        """The item's causal span chain, newest first (tests/diagnostics)."""
        chain: List[Span] = []
        span_id = self.item_span.get(item_id)
        seen = set()
        while span_id is not None and span_id not in seen:
            seen.add(span_id)
            span = self._by_id.get(span_id)
            if span is None:
                break
            chain.append(span)
            span_id = span.parent_id
        return chain

    def stats(self) -> dict:
        return {
            "spans": len(self.spans),
            "instants": len(self.instants),
            "flows": len(self.flows),
            "dropped": self.dropped,
            "sample": self.sample,
        }
