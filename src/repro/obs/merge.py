"""Aggregate per-worker telemetry snapshots into one exportable hub.

The distributed backend runs one telemetry hub per worker process and
ships each hub's :meth:`~repro.obs.hub.TelemetryHub.snapshot` (plain
picklable data) back over the control socket. :func:`merge_snapshots`
folds those into a single snapshot — counters and histogram buckets sum,
gauges take the maximum (worker gauges are peaks/levels; a sum would
invent memory that never coexisted), histogram merges require identical
bucket bounds — and :func:`hub_from_snapshot` rebuilds a live
:class:`~repro.obs.hub.TelemetryHub` from it so every existing exporter
(:func:`~repro.obs.export.prometheus_text`, JSONL, summary tables) works
on distributed results unchanged.

Span *events* are not shipped from workers (only their counts), so a
rebuilt hub has an empty tracer; Chrome-trace export of a distributed
run is documented as unsupported in ``docs/distributed.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import TelemetryError
from repro.obs.hub import TelemetryConfig, TelemetryHub


def _key(sample: dict) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    return sample["name"], tuple(sorted(sample["labels"].items()))


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge hub snapshots (one per worker) into one snapshot dict."""
    snapshots = [s for s in snapshots if s and s.get("enabled")]
    if not snapshots:
        raise TelemetryError("no enabled telemetry snapshots to merge")
    merged: Dict[Tuple[str, tuple], dict] = {}
    order: List[Tuple[str, tuple]] = []
    for snap in snapshots:
        for sample in snap.get("metrics", []):
            key = _key(sample)
            have = merged.get(key)
            if have is None:
                merged[key] = {k: (dict(v) if isinstance(v, dict) else
                                   [list(b) for b in v] if k == "buckets" else v)
                               for k, v in sample.items()}
                order.append(key)
                continue
            if have["type"] != sample["type"]:
                raise TelemetryError(
                    f"metric {sample['name']!r} is a {have['type']} in one "
                    f"worker and a {sample['type']} in another"
                )
            if have["type"] == "counter":
                have["value"] += sample["value"]
            elif have["type"] == "gauge":
                have["value"] = max(have["value"], sample["value"])
            else:  # histogram
                bounds = [b for b, _ in have["buckets"]]
                if bounds != [b for b, _ in sample["buckets"]]:
                    raise TelemetryError(
                        f"histogram {sample['name']!r} bucket bounds differ "
                        f"across workers; cannot merge"
                    )
                for slot, (_b, count) in zip(have["buckets"],
                                             sample["buckets"]):
                    slot[1] += count
                have["count"] += sample["count"]
                have["sum"] += sample["sum"]
            have["t"] = max(have["t"], sample["t"])
    meta: Dict[str, object] = {}
    for snap in snapshots:
        meta.update(snap.get("meta", {}))
    spans: Dict[str, object] = {}
    for snap in snapshots:
        for k, v in (snap.get("spans") or {}).items():
            if isinstance(v, (int, float)) and isinstance(spans.get(k, 0), (int, float)):
                spans[k] = spans.get(k, 0) + v
            else:
                spans[k] = v
    return {
        "enabled": True,
        "meta": meta,
        "t_end": max((s.get("t_end") or 0.0) for s in snapshots),
        "metrics": [merged[k] for k in order],
        "spans": spans,
    }


def hub_from_snapshot(snapshot: dict) -> TelemetryHub:
    """Rebuild a live hub from a (possibly merged) snapshot.

    The returned hub's metric registry reproduces every sample —
    exporters cannot tell it from the hub that recorded them. Span
    events are not reconstructable from a snapshot; the tracer starts
    empty.
    """
    if not snapshot.get("enabled"):
        raise TelemetryError("cannot rebuild a hub from a disabled snapshot")
    hub = TelemetryHub(TelemetryConfig(enabled=True, metrics=True, spans=False))
    for sample in snapshot.get("metrics", []):
        name, labels = sample["name"], sample["labels"]
        if sample["type"] == "counter":
            metric = hub.metrics.counter(name, labels)
            metric.value = sample["value"]
        elif sample["type"] == "gauge":
            metric = hub.metrics.gauge(name, labels)
            metric.value = sample["value"]
        else:
            buckets = sample["buckets"]
            bounds = tuple(b for b, _ in buckets[:-1])
            metric = hub.metrics.histogram(name, labels, buckets=bounds)
            running = 0
            counts = []
            for _b, cum in buckets[:-1]:
                counts.append(int(cum - running))
                running = cum
            metric.bucket_counts = counts
            metric.inf_count = int(buckets[-1][1] - running)
            metric.count = int(sample["count"])
            metric.total = sample["sum"]
        metric.last_updated = sample["t"]
    hub.run_meta.update(snapshot.get("meta", {}))
    hub.t_end = snapshot.get("t_end")
    return hub
