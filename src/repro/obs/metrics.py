"""Metric primitives and the registry: counters, gauges, histograms.

The registry keys every instrument on ``(name, labels)`` — the same
identity Prometheus uses — and stamps updates with the DES clock (the
hub binds :attr:`MetricsRegistry.time_fn` to the runtime's
``SimClock.now``), so an exported sample carries *simulated* time, not
wall time. Instruments are plain mutable objects with ``__slots__``;
the hot-path cost of an update is one attribute store plus one clock
read. Instrument creation is idempotent: asking for an existing
``(name, labels)`` pair returns the live instrument, and asking for it
with a different *type* raises :class:`~repro.errors.TelemetryError`
rather than silently shadowing it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import TelemetryError

#: Canonical label identity: sorted ``(key, value)`` pairs.
LabelSet = Tuple[Tuple[str, str], ...]

#: Histogram bucket bounds suited to simulated seconds (iteration
#: periods, sleeps, transfer times). An implicit +inf bucket follows.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def canonical_labels(labels: Union[Mapping[str, object], LabelSet, None]) -> LabelSet:
    """Normalize a label mapping to its canonical sorted-tuple identity."""
    if not labels:
        return ()
    if isinstance(labels, tuple):
        return labels
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common identity of one instrument: name, labels, last-update time."""

    __slots__ = ("name", "labels", "help", "last_updated", "_time_fn")

    metric_type = "untyped"

    def __init__(self, name: str, labels: LabelSet, help: str, time_fn) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.last_updated: Optional[float] = None
        self._time_fn = time_fn

    def _stamp(self) -> None:
        self.last_updated = self._time_fn()

    def sample(self) -> dict:
        """Plain-data snapshot of this instrument (JSONL export)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(f"{k}={v}" for k, v in self.labels)
        return f"<{type(self).__name__} {self.name}{{{pairs}}}>"


class Counter(Metric):
    """A monotonically increasing total."""

    __slots__ = ("value",)

    metric_type = "counter"

    def __init__(self, name: str, labels: LabelSet, help: str, time_fn) -> None:
        super().__init__(name, labels, help, time_fn)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount
        self._stamp()

    def sample(self) -> dict:
        return {"type": "counter", "name": self.name,
                "labels": dict(self.labels), "value": self.value,
                "t": self.last_updated}


class Gauge(Metric):
    """A value that can go up and down (depths, bytes held, last STP)."""

    __slots__ = ("value",)

    metric_type = "gauge"

    def __init__(self, name: str, labels: LabelSet, help: str, time_fn) -> None:
        super().__init__(name, labels, help, time_fn)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self._stamp()

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount
        self._stamp()

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount
        self._stamp()

    def sample(self) -> dict:
        return {"type": "gauge", "name": self.name,
                "labels": dict(self.labels), "value": self.value,
                "t": self.last_updated}


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    *non*-cumulatively in storage; :meth:`cumulative` produces the
    Prometheus-style running totals including the +inf bucket.
    """

    __slots__ = ("bounds", "bucket_counts", "inf_count", "total", "count")

    metric_type = "histogram"

    def __init__(self, name: str, labels: LabelSet, help: str, time_fn,
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, labels, help, time_fn)
        if not buckets or list(buckets) != sorted(buckets):
            raise TelemetryError(
                f"histogram {name!r} buckets must be sorted and non-empty"
            )
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.bucket_counts: List[int] = [0] * len(self.bounds)
        self.inf_count = 0
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.inf_count += 1
        self._stamp()

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> List[Tuple[float, int]]:
        """``[(le_bound, running_count), ...]`` ending with ``(inf, count)``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.inf_count))
        return out

    def sample(self) -> dict:
        return {"type": "histogram", "name": self.name,
                "labels": dict(self.labels), "count": self.count,
                "sum": self.total,
                "buckets": [[b, c] for b, c in self.cumulative()],
                "t": self.last_updated}


class MetricsRegistry:
    """All instruments of one telemetry hub, keyed on ``(name, labels)``."""

    def __init__(self, time_fn=None) -> None:
        self._metrics: Dict[Tuple[str, LabelSet], Metric] = {}
        self.time_fn = time_fn if time_fn is not None else (lambda: 0.0)

    def _now(self) -> float:
        return self.time_fn()

    def _get_or_create(self, cls, name: str, labels, help: str, **kwargs):
        key = (name, canonical_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], help, self._now, **kwargs)
            self._metrics[key] = metric
            return metric
        if not isinstance(metric, cls):
            raise TelemetryError(
                f"metric {name!r} already registered as "
                f"{metric.metric_type}, requested {cls.metric_type}"
            )
        return metric

    def counter(self, name: str, labels=None, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name: str, labels=None, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(self, name: str, labels=None, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help,
                                   buckets=buckets)

    def get(self, name: str, labels=None) -> Optional[Metric]:
        """The live instrument for ``(name, labels)``, or None."""
        return self._metrics.get((name, canonical_labels(labels)))

    def value(self, name: str, labels=None, default: float = 0.0) -> float:
        """Scalar convenience read (counters/gauges only)."""
        metric = self.get(name, labels)
        if metric is None:
            return default
        return getattr(metric, "value", default)

    def collect(self) -> Iterable[Metric]:
        """Every instrument, sorted by ``(name, labels)`` for stable export."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def snapshot(self) -> List[dict]:
        """Plain-data samples of every instrument (stable order)."""
        return [m.sample() for m in self.collect()]

    def __len__(self) -> int:
        return len(self._metrics)
