"""Metric primitives and the registry: counters, gauges, histograms.

The registry keys every instrument on ``(name, labels)`` — the same
identity Prometheus uses — and stamps updates with the DES clock (the
hub binds :attr:`MetricsRegistry.time_fn` to the runtime's
``SimClock.now``), so an exported sample carries *simulated* time, not
wall time. Instruments are plain mutable objects with ``__slots__``;
the hot-path cost of an update is one attribute store plus one clock
read. Instrument creation is idempotent: asking for an existing
``(name, labels)`` pair returns the live instrument, and asking for it
with a different *type* raises :class:`~repro.errors.TelemetryError`
rather than silently shadowing it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import TelemetryError

#: Canonical label identity: sorted ``(key, value)`` pairs.
LabelSet = Tuple[Tuple[str, str], ...]

#: Histogram bucket bounds suited to simulated seconds (iteration
#: periods, sleeps, transfer times). An implicit +inf bucket follows.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def canonical_labels(labels: Union[Mapping[str, object], LabelSet, None]) -> LabelSet:
    """Normalize a label mapping to its canonical sorted-tuple identity."""
    if not labels:
        return ()
    if isinstance(labels, tuple):
        return labels
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common identity of one instrument: name, labels, last-update time."""

    __slots__ = ("name", "labels", "help", "last_updated", "_time_fn")

    metric_type = "untyped"

    def __init__(self, name: str, labels: LabelSet, help: str, time_fn) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.last_updated: Optional[float] = None
        self._time_fn = time_fn

    def _stamp(self) -> None:
        self.last_updated = self._time_fn()

    def sample(self) -> dict:
        """Plain-data snapshot of this instrument (JSONL export)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(f"{k}={v}" for k, v in self.labels)
        return f"<{type(self).__name__} {self.name}{{{pairs}}}>"


class Counter(Metric):
    """A monotonically increasing total."""

    __slots__ = ("value",)

    metric_type = "counter"

    def __init__(self, name: str, labels: LabelSet, help: str, time_fn) -> None:
        super().__init__(name, labels, help, time_fn)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount
        self._stamp()

    def sample(self) -> dict:
        return {"type": "counter", "name": self.name,
                "labels": dict(self.labels), "value": self.value,
                "t": self.last_updated}


class Gauge(Metric):
    """A value that can go up and down (depths, bytes held, last STP)."""

    __slots__ = ("value",)

    metric_type = "gauge"

    def __init__(self, name: str, labels: LabelSet, help: str, time_fn) -> None:
        super().__init__(name, labels, help, time_fn)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self._stamp()

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount
        self._stamp()

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount
        self._stamp()

    def sample(self) -> dict:
        return {"type": "gauge", "name": self.name,
                "labels": dict(self.labels), "value": self.value,
                "t": self.last_updated}


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    *non*-cumulatively in storage; :meth:`cumulative` produces the
    Prometheus-style running totals including the +inf bucket.
    """

    __slots__ = ("bounds", "bucket_counts", "inf_count", "total", "count")

    metric_type = "histogram"

    def __init__(self, name: str, labels: LabelSet, help: str, time_fn,
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, labels, help, time_fn)
        if not buckets or list(buckets) != sorted(buckets):
            raise TelemetryError(
                f"histogram {name!r} buckets must be sorted and non-empty"
            )
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.bucket_counts: List[int] = [0] * len(self.bounds)
        self.inf_count = 0
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.inf_count += 1
        self._stamp()

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> List[Tuple[float, int]]:
        """``[(le_bound, running_count), ...]`` ending with ``(inf, count)``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.inf_count))
        return out

    def sample(self) -> dict:
        return {"type": "histogram", "name": self.name,
                "labels": dict(self.labels), "count": self.count,
                "sum": self.total,
                "buckets": [[b, c] for b, c in self.cumulative()],
                "t": self.last_updated}


class SlotBank:
    """Flat-array metric storage behind preresolved hot-path handles.

    The hub resolves each instrumentation site **once** at wiring time
    into integer slots of :attr:`values`; the per-operation cost is then
    a bare ``values[i] += x`` — no ``(name, labels)`` dict lookup, no
    ``str()`` churn, no timestamp call. Label resolution and export
    happen when the owning :class:`MetricsRegistry` materialises the
    bank into ordinary instruments (on ``snapshot``/``collect``/
    ``value``/``get``), never on the hot path.

    Series kinds:

    * ``counter`` — one slot, initialised to ``0.0``;
    * ``gauge`` — one set-only slot, initialised to ``NaN``; a slot
      still NaN at export time was never written and is not exported
      (so wiring an instrument does not invent a ``0.0`` sample);
    * ``hist`` — a contiguous block ``[c_0..c_k-1, inf, sum, count]``
      over ``k`` bounds; skipped at export while ``count`` is zero;
    * ``hidden`` — accumulator slots that feed derived gauges but are
      never exported themselves (e.g. cumulative put bytes);
    * ``derived`` — a gauge materialised as ``sum(plus) - sum(minus)``
      over other slots (e.g. buffer depth = puts − frees), so the hot
      path pays one add instead of a read-modify-write pair.

    The array grows on demand (``list.extend``); handles hold the list
    object itself, so growth never invalidates an existing handle.
    """

    __slots__ = ("values", "_slots", "_series", "_derived")

    def __init__(self) -> None:
        self.values: List[float] = []
        #: (name, labels) -> (kind, slot)
        self._slots: Dict[Tuple[str, LabelSet], Tuple[str, int]] = {}
        #: export metadata, in allocation order:
        #: (kind, name, labels, slot, extra)
        self._series: List[tuple] = []
        #: (name, labels) -> (plus_slots, minus_slots)
        self._derived: Dict[Tuple[str, LabelSet], Tuple[List[int], List[int]]] = {}

    def _slot(self, kind: str, name: str, labels, width: int,
              init: float, extra=None) -> int:
        key = (name, canonical_labels(labels))
        found = self._slots.get(key)
        if found is not None:
            have_kind, slot = found
            if have_kind != kind:
                raise TelemetryError(
                    f"metric {name!r} already banked as {have_kind}, "
                    f"requested {kind}"
                )
            return slot
        slot = len(self.values)
        self.values.extend([init] * width)
        self._slots[key] = (kind, slot)
        self._series.append((kind, key[0], key[1], slot, extra))
        return slot

    def counter_slot(self, name: str, labels=None) -> int:
        """Slot of a monotonic counter (idempotent per ``(name, labels)``)."""
        return self._slot("counter", name, labels, 1, 0.0)

    def gauge_slot(self, name: str, labels=None) -> int:
        """Slot of a set-style gauge; NaN until first written."""
        return self._slot("gauge", name, labels, 1, float("nan"))

    def hidden_slot(self, name: str, labels=None) -> int:
        """Slot of a non-exported accumulator (feeds derived gauges)."""
        return self._slot("hidden", name, labels, 1, 0.0)

    def histogram_slot(self, name: str, labels=None,
                       buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> int:
        """Start slot of a histogram block ``[c_0.., inf, sum, count]``."""
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise TelemetryError(
                f"histogram {name!r} buckets must be sorted and non-empty"
            )
        return self._slot("hist", name, labels, len(bounds) + 3, 0.0, bounds)

    def histogram_handle(self, name: str, labels=None,
                         buckets: Tuple[float, ...] = DEFAULT_BUCKETS
                         ) -> "HistogramHandle":
        """A bound :class:`HistogramHandle` over :meth:`histogram_slot`."""
        slot = self.histogram_slot(name, labels, buckets)
        return HistogramHandle(
            self.values, slot, tuple(float(b) for b in buckets)
        )

    def derive_gauge(self, name: str, labels=None,
                     plus: Iterable[int] = (), minus: Iterable[int] = ()) -> None:
        """Register/extend a gauge exported as ``sum(plus) - sum(minus)``."""
        key = (name, canonical_labels(labels))
        entry = self._derived.get(key)
        if entry is None:
            self._derived[key] = (list(plus), list(minus))
            self._series.append(("derived", key[0], key[1], None, None))
            return
        for slot in plus:
            if slot not in entry[0]:
                entry[0].append(slot)
        for slot in minus:
            if slot not in entry[1]:
                entry[1].append(slot)

    def __len__(self) -> int:
        return len(self._slots) + len(self._derived)


class NoopHandle:
    """Shared do-nothing handle (telemetry disabled or metrics-off)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None: ...
    def add(self, a: float, b: float) -> None: ...
    def set(self, value: float) -> None: ...
    def observe(self, value: float) -> None: ...
    def update(self, *args, **kwargs) -> None: ...


#: The module-level no-op handle every disabled site shares.
NOOP_HANDLE = NoopHandle()


class CounterHandle:
    """Preresolved single-slot adder: ``inc`` is one array add."""

    __slots__ = ("_values", "_slot")

    def __init__(self, values: List[float], slot: int) -> None:
        self._values = values
        self._slot = slot

    def inc(self, amount: float = 1.0) -> None:
        self._values[self._slot] += amount


class PairHandle:
    """Two preresolved slots updated together (count + volume)."""

    __slots__ = ("_values", "_a", "_b")

    def __init__(self, values: List[float], a: int, b: int) -> None:
        self._values = values
        self._a = a
        self._b = b

    def add(self, a: float, b: float) -> None:
        values = self._values
        values[self._a] += a
        values[self._b] += b


class GaugeHandle:
    """Preresolved set-style gauge slot."""

    __slots__ = ("_values", "_slot")

    def __init__(self, values: List[float], slot: int) -> None:
        self._values = values
        self._slot = slot

    def set(self, value: float) -> None:
        self._values[self._slot] = value


class HistogramHandle:
    """Preresolved histogram block; ``observe`` is a bisect + three adds."""

    __slots__ = ("_values", "_slot", "_bounds", "_isum", "_icnt")

    def __init__(self, values: List[float], slot: int,
                 bounds: Tuple[float, ...]) -> None:
        self._values = values
        self._slot = slot
        self._bounds = bounds
        self._isum = slot + len(bounds) + 1
        self._icnt = slot + len(bounds) + 2

    def observe(self, value: float) -> None:
        values = self._values
        values[self._slot + bisect_left(self._bounds, value)] += 1.0
        values[self._isum] += value
        values[self._icnt] += 1.0


class MetricsRegistry:
    """All instruments of one telemetry hub, keyed on ``(name, labels)``.

    Two storage tiers share this namespace: ordinary instrument objects
    (ad-hoc ``counter()``/``gauge()``/``histogram()`` calls, stamped per
    update) and the :class:`SlotBank` behind the hub's preresolved
    hot-path handles. Bank slots are materialised into instruments
    lazily — every read API (``get``/``value``/``collect``/
    ``snapshot``/``len``) folds the bank in first, so callers observe
    one coherent registry. Bank-owned series are overwritten from their
    slots at each materialisation; don't update them ad-hoc as well.
    """

    def __init__(self, time_fn=None) -> None:
        self._metrics: Dict[Tuple[str, LabelSet], Metric] = {}
        self.time_fn = time_fn if time_fn is not None else (lambda: 0.0)
        self.bank = SlotBank()

    def _now(self) -> float:
        return self.time_fn()

    def _get_or_create(self, cls, name: str, labels, help: str, **kwargs):
        key = (name, canonical_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], help, self._now, **kwargs)
            self._metrics[key] = metric
            return metric
        if not isinstance(metric, cls):
            raise TelemetryError(
                f"metric {name!r} already registered as "
                f"{metric.metric_type}, requested {cls.metric_type}"
            )
        return metric

    def counter(self, name: str, labels=None, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name: str, labels=None, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(self, name: str, labels=None, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help,
                                   buckets=buckets)

    def _sync_bank(self) -> None:
        """Materialise :class:`SlotBank` slots into ordinary instruments.

        Runs on every read API, never on the update path. Timestamps
        follow stamp-on-change semantics: a series whose banked value
        has not moved since the last materialisation keeps its previous
        ``last_updated``.
        """
        bank = self.bank
        values = bank.values
        for kind, name, labels, slot, extra in bank._series:
            if kind == "hidden":
                continue
            key = (name, labels)
            if kind == "counter":
                metric = self._get_or_create(Counter, name, labels, "")
                v = values[slot]
                if metric.value != v:
                    # Assign directly (not ``inc``): slots are the source
                    # of truth and re-materialisation must be idempotent.
                    metric.value = v
                    metric.last_updated = self.time_fn()
            elif kind == "gauge":
                v = values[slot]
                if v != v:  # NaN sentinel: never written, don't export
                    continue
                metric = self._get_or_create(Gauge, name, labels, "")
                if metric.value != v or metric.last_updated is None:
                    metric.value = v
                    metric.last_updated = self.time_fn()
            elif kind == "derived":
                plus, minus = bank._derived[key]
                v = 0.0
                for i in plus:
                    v += values[i]
                for i in minus:
                    v -= values[i]
                metric = self._get_or_create(Gauge, name, labels, "")
                if metric.value != v:
                    metric.value = v
                    metric.last_updated = self.time_fn()
            else:  # hist
                bounds = extra
                k = len(bounds)
                count = values[slot + k + 2]
                if count == 0:
                    continue
                metric = self._get_or_create(Histogram, name, labels, "",
                                             buckets=bounds)
                if metric.count != count:
                    metric.bucket_counts = [
                        int(values[slot + i]) for i in range(k)
                    ]
                    metric.inf_count = int(values[slot + k])
                    metric.total = values[slot + k + 1]
                    metric.count = int(count)
                    metric.last_updated = self.time_fn()

    def get(self, name: str, labels=None) -> Optional[Metric]:
        """The live instrument for ``(name, labels)``, or None."""
        if self.bank._series:
            self._sync_bank()
        return self._metrics.get((name, canonical_labels(labels)))

    def value(self, name: str, labels=None, default: float = 0.0) -> float:
        """Scalar convenience read (counters/gauges only)."""
        metric = self.get(name, labels)
        if metric is None:
            return default
        return getattr(metric, "value", default)

    def collect(self) -> Iterable[Metric]:
        """Every instrument, sorted by ``(name, labels)`` for stable export."""
        if self.bank._series:
            self._sync_bank()
        return [self._metrics[k] for k in sorted(self._metrics)]

    def snapshot(self) -> List[dict]:
        """Plain-data samples of every instrument (stable order)."""
        return [m.sample() for m in self.collect()]

    def __len__(self) -> int:
        if self.bank._series:
            self._sync_bank()
        return len(self._metrics)
