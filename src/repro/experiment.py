"""One front door for running experiments: ``repro.run_experiment``.

Before this facade the repo had three ways to run the same simulation —
:meth:`repro.runtime.api.StampedeApp.run_simulated` (hand-built apps),
:class:`repro.runtime.Runtime` driven directly (tests, notebooks), and
the sweep runner's cell executor (benches) — each wiring
cluster/policy/GC/faults slightly differently. :func:`run_experiment`
unifies them: every entry style builds an :class:`ExperimentSpec`,
resolves it to one :class:`~repro.runtime.Runtime`, and returns a
:class:`RunResult` bundling the trace, runtime statistics, the fault
log, and the telemetry hub. The legacy entry points now delegate here,
so behaviour (and determinism fingerprints) cannot drift between them.

>>> import repro
>>> result = repro.run_experiment(repro.ExperimentSpec(horizon=5.0))
>>> len(result.trace.sink_iterations()) > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigError


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything one experiment needs, in one declarative value.

    Attributes
    ----------
    app:
        What to run: a builtin app name (``"tracker"`` / ``"gesture"`` /
        ``"stereo"``), a :class:`~repro.runtime.TaskGraph`, or a
        :class:`~repro.runtime.api.StampedeApp` (its graph is used).
    app_config:
        Per-app config object (e.g. ``TrackerConfig``) when ``app`` is a
        name; must be None for graph/app instances.
    config:
        Cluster: a paper config name (``"config1"`` / ``"config2"``), a
        :class:`~repro.cluster.ClusterSpec`, or None for config1. The
        tracker on ``"config2"`` gets the paper's placement by default.
    policy:
        ARU policy: an :class:`~repro.aru.AruConfig`, a registered
        policy name (``"aru-max"``...), or None for disabled.
    scale_policy:
        Elastic-parallelism policy for replicated stages: a
        :class:`~repro.control.ScaleConfig`, a registered name
        (``"erlang"``...), or None for not configured. Only meaningful
        when the resolved graph declares replicated stages.
    gc / seed / placement / loads / retry / record_stp:
        Forwarded to :class:`~repro.runtime.RuntimeConfig`.
    faults:
        A tuple of :class:`~repro.faults.FaultSpec` (or a
        :class:`~repro.faults.FaultSchedule`); empty injects nothing.
    telemetry:
        False (off, zero overhead), True, a
        :class:`~repro.obs.TelemetryConfig`, or a pre-built
        :class:`~repro.obs.TelemetryHub`.
    horizon:
        Simulated seconds to run (wall-clock seconds on the live
        ``threads``/``proc`` backends).
    backend:
        Which executor runs the spec: a name registered in
        :mod:`repro.backends` (``"sim"``, ``"threads"``, ``"proc"``,
        or an extension). The default ``"sim"`` is the deterministic
        discrete-event simulation.
    backend_options:
        Backend-specific knobs (e.g. ``{"compute_mode": "spin"}`` for
        the threads backend); must be empty for ``sim``.
    """

    app: Any = "tracker"
    app_config: Any = None
    config: Any = None
    policy: Any = None
    scale_policy: Any = None
    gc: Any = "dgc"
    seed: int = 0
    horizon: float = 120.0
    placement: Mapping[str, str] = field(default_factory=dict)
    loads: Tuple[Any, ...] = ()
    faults: Any = ()
    retry: Any = None
    record_stp: bool = True
    telemetry: Any = False
    backend: str = "sim"
    backend_options: Mapping[str, Any] = field(default_factory=dict)

    def with_(self, **changes) -> "ExperimentSpec":
        return replace(self, **changes)

    # -- resolution ------------------------------------------------------
    def resolve_graph(self):
        """The task graph this spec runs (builds builtin apps by name)."""
        from repro.runtime.api import StampedeApp
        from repro.runtime.graph import TaskGraph

        app = self.app
        if isinstance(app, StampedeApp):
            app = app.graph
        if isinstance(app, TaskGraph):
            if self.app_config is not None:
                raise ConfigError(
                    "app_config only applies when app is a builtin name"
                )
            return app
        if not isinstance(app, str):
            raise ConfigError(
                f"app must be a name, TaskGraph, or StampedeApp; got {app!r}"
            )
        if app == "tracker":
            from repro.apps.tracker import build_tracker
            return build_tracker(self.app_config)
        if app == "gesture":
            from repro.apps.gesture import build_gesture
            return build_gesture(self.app_config)
        if app == "stereo":
            from repro.apps.stereo import build_stereo
            return build_stereo(self.app_config)
        raise ConfigError(
            f"unknown app {app!r}; expected tracker/gesture/stereo"
        )

    def resolve_cluster_and_placement(self):
        """``(ClusterSpec, placement)`` with the paper's defaults."""
        from repro.cluster.spec import ClusterSpec, config1_spec, config2_spec

        placement = dict(self.placement)
        config = self.config
        if config is None:
            return config1_spec(), placement
        if isinstance(config, ClusterSpec):
            return config, placement
        if config == "config1":
            return config1_spec(), placement
        if config == "config2":
            if self.app == "tracker" and not placement:
                from repro.apps.tracker import tracker_placement
                placement = tracker_placement()
            return config2_spec(), placement
        raise ConfigError(
            f"unknown config {config!r}; expected config1/config2 "
            f"or a ClusterSpec"
        )

    def resolve_policy(self):
        """The :class:`~repro.aru.AruConfig` (names via the registry)."""
        from repro.aru.config import AruConfig, aru_disabled

        if self.policy is None:
            return aru_disabled()
        if isinstance(self.policy, AruConfig):
            return self.policy
        from repro.control.registry import resolve_policy
        return resolve_policy(self.policy)

    def resolve_scale_policy(self):
        """The :class:`~repro.control.ScaleConfig` or None (names via
        the scale registry)."""
        from repro.control.registry import resolve_scale_policy
        return resolve_scale_policy(self.scale_policy)

    def runtime_config(self):
        """The fully resolved :class:`~repro.runtime.RuntimeConfig`."""
        from repro.runtime.retry import RetryPolicy
        from repro.runtime.runtime import RuntimeConfig

        cluster, placement = self.resolve_cluster_and_placement()
        kwargs: Dict[str, Any] = dict(
            cluster=cluster,
            gc=self.gc,
            aru=self.resolve_policy(),
            seed=self.seed,
            placement=placement,
            record_stp=self.record_stp,
            loads=tuple(self.loads),
            telemetry=self.telemetry,
            scale=self.resolve_scale_policy(),
        )
        if self.retry is not None:
            if not isinstance(self.retry, RetryPolicy):
                raise ConfigError(f"retry must be a RetryPolicy, got {self.retry!r}")
            kwargs["retry"] = self.retry
        return RuntimeConfig(**kwargs)


@dataclass
class RunResult:
    """Everything one finished experiment produced.

    ``trace`` is the :class:`~repro.metrics.TraceRecorder` the legacy
    entry points used to return; ``telemetry`` is the live hub (the
    shared null hub when telemetry was off); ``fault_log`` is None for
    fault-free runs; ``runtime`` stays available for post-run
    inspection (buffers, drivers, nodes).
    """

    spec: ExperimentSpec
    trace: Any
    stats: Dict[str, dict]
    telemetry: Any
    fault_log: Any = None
    runtime: Any = None

    @property
    def telemetry_enabled(self) -> bool:
        return bool(getattr(self.telemetry, "enabled", False))


def _spec_from_dict(raw: Mapping[str, Any]) -> ExperimentSpec:
    """Adapt the declarative spec-file grammar to an ExperimentSpec.

    The dict grammar (see :mod:`repro.bench.specfile`) keeps its own
    strict validation; this only lifts the keys the facade owns
    (``telemetry``, ``faults``) before handing the rest over.
    """
    from repro.bench.specfile import experiment_from_dict
    from repro.faults.spec import FaultSpec

    raw = dict(raw)
    telemetry = raw.pop("telemetry", False)
    backend = raw.pop("backend", "sim")
    backend_options = raw.pop("backend_options", {})
    faults = tuple(
        FaultSpec.from_dict(f) if isinstance(f, dict) else f
        for f in raw.pop("faults", ())
    )
    # Validate + normalize everything else through the specfile grammar.
    graph, runtime_config, horizon = experiment_from_dict(raw)
    return ExperimentSpec(
        app=graph,
        config=runtime_config.cluster,
        policy=runtime_config.aru,
        gc=runtime_config.gc,
        seed=runtime_config.seed,
        horizon=horizon,
        placement=runtime_config.placement,
        loads=runtime_config.loads,
        faults=faults,
        telemetry=telemetry,
        backend=backend,
        backend_options=backend_options,
    )


def run_experiment(spec: Union[ExperimentSpec, Mapping[str, Any], None] = None,
                   **overrides) -> RunResult:
    """Run one experiment end to end; the single front door.

    Accepts an :class:`ExperimentSpec`, a spec-file dict (the
    ``run-config`` grammar plus ``telemetry``/``faults`` keys), or
    keyword overrides over the default spec:

    >>> import repro
    >>> repro.run_experiment(horizon=5.0).telemetry_enabled
    False
    """
    if spec is None:
        spec = ExperimentSpec(**overrides)
    elif isinstance(spec, ExperimentSpec):
        if overrides:
            spec = spec.with_(**overrides)
    elif isinstance(spec, Mapping):
        spec = _spec_from_dict(spec)
        if overrides:
            spec = spec.with_(**overrides)
    else:
        raise ConfigError(
            f"run_experiment takes an ExperimentSpec or dict, got {spec!r}"
        )

    from repro.backends import resolve_backend

    runner = resolve_backend(spec.backend)
    return runner(spec)


def execute_simulated(spec: ExperimentSpec) -> RunResult:
    """Run a spec on the discrete-event simulator (the ``sim`` backend).

    This is the registered runner behind ``backend="sim"``; call
    :func:`run_experiment` instead of this directly so the dispatch
    stays in one place.
    """
    if spec.backend_options:
        raise ConfigError(
            f"the sim backend takes no backend_options, "
            f"got {dict(spec.backend_options)!r}"
        )

    from repro.runtime.runtime import Runtime

    graph = spec.resolve_graph()
    runtime = Runtime(graph, spec.runtime_config())

    fault_log = None
    faults = spec.faults
    if faults is not None:
        from repro.faults import FaultInjector, FaultSchedule

        if not isinstance(faults, FaultSchedule):
            faults = FaultSchedule(tuple(faults))
        if not faults.is_empty:
            injector = FaultInjector(runtime, faults)
            injector.install()
            fault_log = injector.log

    trace = runtime.run(until=spec.horizon)
    return RunResult(
        spec=spec,
        trace=trace,
        stats=runtime.stats(),
        telemetry=runtime.obs,
        fault_log=fault_log,
        runtime=runtime,
    )
