"""Applications: the people tracker, gesture/stereo pipelines, and
generic workload generators."""

from repro.apps.gesture import GestureConfig, build_gesture
from repro.apps.stereo import StereoConfig, build_stereo
from repro.apps.tracker import (
    CHANNELS,
    FRAME_BYTES,
    HIST_BYTES,
    LOCATION_BYTES,
    MASK_BYTES,
    THREADS,
    TrackerConfig,
    build_tracker,
    tracker_placement,
)
from repro.apps.vision import (
    DEFAULT_FRAME_SHAPE,
    StageCost,
    background_subtract,
    color_histogram,
    detect_target,
    make_frame,
)
from repro.apps.elastic import (
    WORKLOADS,
    build_workload,
    elastic_pipeline,
    make_draining_sink,
    make_pool_worker,
    make_swing_source,
)
from repro.apps.workloads import (
    fan_in,
    fan_out,
    linear_pipeline,
    make_sink,
    make_source,
    make_worker,
    work_queue_pool,
)

__all__ = [
    "TrackerConfig",
    "build_tracker",
    "GestureConfig",
    "build_gesture",
    "StereoConfig",
    "build_stereo",
    "tracker_placement",
    "THREADS",
    "CHANNELS",
    "FRAME_BYTES",
    "MASK_BYTES",
    "HIST_BYTES",
    "LOCATION_BYTES",
    "StageCost",
    "make_frame",
    "background_subtract",
    "color_histogram",
    "detect_target",
    "DEFAULT_FRAME_SHAPE",
    "linear_pipeline",
    "fan_out",
    "fan_in",
    "work_queue_pool",
    "make_source",
    "make_worker",
    "make_sink",
    "elastic_pipeline",
    "build_workload",
    "WORKLOADS",
    "make_swing_source",
    "make_pool_worker",
    "make_draining_sink",
]
