"""Synthetic vision kernels and stage cost models.

The paper's tracker runs CRL vision code (background subtraction, color
histogramming, histogram-based target detection) on live camera frames.
ARU never looks at pixel content — only at *when* items are produced and
consumed and *how large* they are — so the reproduction needs (a) faithful
item sizes, (b) faithful relative stage speeds with data-dependent
variation, and optionally (c) real array computations for the live-threads
executor. This module provides all three:

* :class:`StageCost` — lognormal service-time model with a slow sinusoidal
  "scene activity" modulation (the execution time of a vision kernel
  depends on what is in the frame — §3.1: "computation is data-dependent");
* genuine numpy kernels (:func:`make_frame`, :func:`background_subtract`,
  :func:`color_histogram`, :func:`detect_target`) used when payload
  synthesis is enabled and by the real-threads examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.sim.rng import lognormal_with_mean


@dataclass(frozen=True)
class StageCost:
    """Service-time model for one pipeline stage.

    ``sample(rng, ts)`` draws the execution time of the iteration
    processing virtual time ``ts``:

    ``base = mean * (1 + activity_amp * sin(2*pi*ts / activity_period))``
    then a lognormal draw with that mean and coefficient of variation
    ``cv``. The sinusoid models slow scene-activity drift (a person moving
    through the field of view); the lognormal models per-frame jitter.
    """

    mean: float
    cv: float = 0.0
    activity_amp: float = 0.0
    activity_period: float = 150.0

    def __post_init__(self) -> None:
        if self.mean < 0:
            raise ConfigError(f"negative mean cost: {self.mean}")
        if self.cv < 0:
            raise ConfigError(f"negative cv: {self.cv}")
        if not 0 <= self.activity_amp < 1:
            raise ConfigError("activity_amp must be in [0, 1)")
        if self.activity_period <= 0:
            raise ConfigError("activity_period must be positive")

    def base_mean(self, ts: int) -> float:
        """The activity-modulated mean for virtual time ``ts``."""
        if self.activity_amp == 0.0:
            return self.mean
        phase = 2.0 * math.pi * ts / self.activity_period
        return self.mean * (1.0 + self.activity_amp * math.sin(phase))

    def sample(self, rng: np.random.Generator, ts: int) -> float:
        """Draw one service time for the iteration at virtual time ``ts``."""
        base = self.base_mean(ts)
        if base <= 0:
            return 0.0
        return lognormal_with_mean(rng, base, self.cv)


# ---------------------------------------------------------------------------
# Real numpy kernels (payload synthesis / live-threads executor)
# ---------------------------------------------------------------------------

#: Default frame geometry: 480 x 512 x 3 bytes = 737,280 B — the paper's
#: "Digitizer 738 kB" item size.
DEFAULT_FRAME_SHAPE: Tuple[int, int, int] = (480, 512, 3)


def make_frame(rng: np.random.Generator, ts: int,
               shape: Tuple[int, int, int] = DEFAULT_FRAME_SHAPE) -> np.ndarray:
    """Synthesize a camera frame: static background + a moving blob.

    The blob orbits the frame as a function of ``ts``, so downstream
    kernels see genuinely time-varying content.
    """
    h, w, _ = shape
    frame = np.full(shape, 96, dtype=np.uint8)
    cy = int(h / 2 + (h / 3) * math.sin(ts / 23.0))
    cx = int(w / 2 + (w / 3) * math.cos(ts / 31.0))
    r = max(4, h // 16)
    y0, y1 = max(0, cy - r), min(h, cy + r)
    x0, x1 = max(0, cx - r), min(w, cx + r)
    frame[y0:y1, x0:x1, 0] = 200  # a red-ish person
    frame[y0:y1, x0:x1, 1] = 64
    noise = rng.integers(0, 12, size=shape, dtype=np.uint8)
    return frame + noise


def background_subtract(frame: np.ndarray, background: Optional[np.ndarray] = None,
                        threshold: int = 30) -> np.ndarray:
    """Motion mask: pixels differing from the background beyond a threshold.

    Returns a ``uint8`` mask (0/255) of shape ``frame.shape[:2]``.
    """
    if background is None:
        background = np.full_like(frame, 96)
    diff = np.abs(frame.astype(np.int16) - background.astype(np.int16)).max(axis=2)
    return ((diff > threshold) * 255).astype(np.uint8)


def color_histogram(frame: np.ndarray, bins: int = 32) -> np.ndarray:
    """Per-channel color histogram, normalized to sum to 1 per channel."""
    if frame.ndim != 3:
        raise ValueError("expected an H x W x C frame")
    channels = []
    for c in range(frame.shape[2]):
        hist, _ = np.histogram(frame[:, :, c], bins=bins, range=(0, 256))
        total = hist.sum()
        channels.append(hist / total if total else hist.astype(float))
    return np.stack(channels)


def detect_target(frame: np.ndarray, mask: np.ndarray,
                  model_hist: np.ndarray, patch: int = 32) -> Tuple[int, int, float]:
    """Histogram-intersection target detection over masked patches.

    Scans a coarse grid of patches, scores each by histogram intersection
    with the color model, weighted by motion-mask coverage; returns
    ``(row, col, score)`` of the best patch — the 68-byte "location record".
    """
    h, w = mask.shape
    best = (0, 0, -1.0)
    for y in range(0, h - patch + 1, patch):
        for x in range(0, w - patch + 1, patch):
            coverage = mask[y:y + patch, x:x + patch].mean() / 255.0
            if coverage < 0.05:
                continue
            hist = color_histogram(frame[y:y + patch, x:x + patch],
                                   bins=model_hist.shape[1])
            score = float(np.minimum(hist, model_hist).sum()) * coverage
            if score > best[2]:
                best = (y, x, score)
    return best
