"""Elastic streaming workloads: replicated stages under load swings.

The ablation bench for ISSUE 6 needs a workload where the *offered*
load changes faster than a fixed worker pool can absorb: a source whose
period represents external arrivals (a camera switching to burst mode,
a sensor fan-in spike) drops by ``factor`` during a swing window, and a
replicated worker stage behind a partition/merge pair either keeps up
(elastic scaling spawns replicas) or falls behind (fixed N — the
backlog, and with it end-to-end latency, grows for the whole window).

Determinism contract: every task body here is **RNG-free** (fixed
compute costs, fixed periods). RNG streams are keyed by thread name, so
replica names entering/leaving the registry would otherwise perturb
run-to-run comparisons between differently-sized pools; with no RNG
draws at all, a fixed-N elastic run is bit-identical across serial and
parallel sweep execution and `null-scale` equals no-replication.

Builders are registered by name (:data:`WORKLOADS`) so sweep cells can
carry ``workload="elastic"`` as a picklable string, mirroring how
policies resolve through the registry.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.runtime.graph import TaskGraph
from repro.runtime.syscalls import (
    Compute,
    Get,
    Now,
    PeriodicitySync,
    Put,
    Sleep,
)
from repro.vt import EARLIEST


def make_swing_source(channel: str, period: float,
                      swing: Optional[Tuple[float, float, float]],
                      size: int, cost: float = 0.002):
    """A paced source whose rate multiplies by ``factor`` in a window.

    ``swing`` is ``(t_on, t_off, factor)``: during ``[t_on, t_off)`` the
    inter-arrival period becomes ``period / factor``. The source reads
    the clock each iteration (:class:`Now`), so the swing needs no
    external scheduling — and the body stays RNG-free.
    """
    if swing is not None:
        t_on, t_off, factor = swing
        if t_off <= t_on:
            raise ConfigError(f"swing window is empty: {swing}")
        if factor <= 0:
            raise ConfigError(f"swing factor must be positive, got {factor}")

    def source(ctx):
        ts = 0
        while True:
            now = yield Now()
            p = period
            if swing is not None and t_on <= now < t_off:
                p = period / factor
            if cost > 0:
                yield Compute(cost)
            yield Put(channel, ts=ts, size=size)
            ts += 1
            yield Sleep(max(0.0, p - cost))
            yield PeriodicitySync()

    return source


def make_pool_worker(in_queue: str, out_channel: str, cost: float,
                     out_size: int):
    """A work-pool worker with a *fixed* per-item cost (RNG-free)."""

    def worker(ctx):
        while True:
            job = yield Get(in_queue, EARLIEST)
            yield Compute(cost)
            yield Put(out_channel, ts=job.ts, size=out_size)
            yield PeriodicitySync()

    return worker


def make_draining_sink(channel: str, cost: float = 0.001):
    """An earliest-draining sink: consumes every merged item in order."""

    def sink(ctx):
        while True:
            item = yield Get(channel, EARLIEST)  # noqa: F841 - lineage
            if cost > 0:
                yield Compute(cost)
            yield PeriodicitySync()

    return sink


def elastic_pipeline(
    replicas: int = 1,
    min_replicas: int = 1,
    max_replicas: int = 6,
    partition: str = "round-robin",
    worker_cost: float = 0.03,
    steady_period: float = 0.12,
    swing: Optional[Tuple[float, float, float]] = (40.0, 80.0, 10.0),
    item_size: int = 100_000,
    sink_cost: float = 0.001,
    source_cost: float = 0.002,
    input_capacity: Optional[int] = None,
    name: str = "elastic",
) -> TaskGraph:
    """``source -> partition -> workers[N] -> merge -> sink``.

    The canonical elastic topology: one swing source feeding a
    replicated worker stage (via :meth:`TaskGraph.add_replicated_stage`)
    whose merged output an earliest-draining sink consumes in timestamp
    order. Defaults put the steady state at ~25% utilisation of one
    worker and the swing at ~2.5 erlangs — beyond any fixed single
    worker but comfortably inside an 8-CPU node at N=4.
    """
    if replicas < 1:
        raise ConfigError(f"replicas must be >= 1, got {replicas}")
    if worker_cost <= 0:
        raise ConfigError(f"worker_cost must be positive, got {worker_cost}")
    if steady_period <= 0:
        raise ConfigError(
            f"steady_period must be positive, got {steady_period}"
        )
    g = TaskGraph(name)
    g.add_thread("source", make_swing_source(
        "part", steady_period, swing, item_size, cost=source_cost))
    g.add_replicated_stage(
        "workers",
        make_pool_worker("part", "merge", worker_cost, item_size),
        input="part",
        output="merge",
        replicas=replicas,
        min_replicas=min_replicas,
        max_replicas=max_replicas,
        partition=partition,
        input_capacity=input_capacity,
    )
    g.add_thread("sink", make_draining_sink("merge", cost=sink_cost),
                 sink=True)
    g.connect("source", "part")
    g.connect("merge", "sink")
    g.validate()
    return g


#: Workloads resolvable by name from sweep cells (picklable strings).
WORKLOADS: Dict[str, Callable[..., TaskGraph]] = {
    "elastic": elastic_pipeline,
}


def build_workload(name: str, **args) -> TaskGraph:
    """Resolve a registered workload builder by name and build it."""
    builder = WORKLOADS.get(name)
    if builder is None:
        raise ConfigError(
            f"unknown workload {name!r} "
            f"(available: {', '.join(sorted(WORKLOADS))})"
        )
    return builder(**args)
