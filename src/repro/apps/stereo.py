"""Stereo vision: the paper's §1 corresponding-timestamps workload.

*"A stereo module in an interactive vision application may require images
with corresponding timestamps from multiple cameras to compute its
output."* The pipeline:

``cam_left --+--> C_left  --+
             |              +--> stereo -> C_depth -> viewer
``cam_right -+--> C_right --+``

The stereo matcher takes the latest left frame, then requests the right
frame with the *same* timestamp (a timed exact get — the right camera
produces every timestamp, but possibly later). Pairs must satisfy
:func:`repro.vt.corresponds` within the configured threshold; pairs that
miss the deadline are dropped and counted.

Two *source* threads make this the interesting ARU case: both cameras
receive summary-STP feedback and throttle independently to the stereo
stage's pace, staying mutually rate-matched without any direct
coordination between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.vision import StageCost
from repro.errors import ConfigError
from repro.runtime.graph import TaskGraph
from repro.runtime.syscalls import Compute, Get, PeriodicitySync, Put, Sleep
from repro.vt.timestamp import corresponds


@dataclass(frozen=True)
class StereoConfig:
    """Knobs of the stereo workload."""

    frame_period: float = 1.0 / 30.0
    frame_bytes: int = 370_000
    depth_bytes: int = 150_000
    #: Jitter between the two cameras' shutters (fraction of the period).
    shutter_jitter: float = 0.1
    #: How long the matcher waits for the corresponding right frame.
    pair_timeout: float = 0.5
    #: Correspondence threshold in virtual-time units (paper footnote 1).
    ts_threshold: int = 0
    stereo_cost: StageCost = field(default_factory=lambda: StageCost(0.15, 0.12))
    viewer_cost: StageCost = field(default_factory=lambda: StageCost(0.01, 0.05))

    def __post_init__(self) -> None:
        if self.pair_timeout <= 0:
            raise ConfigError("pair_timeout must be positive")
        if not 0 <= self.shutter_jitter < 1:
            raise ConfigError("shutter_jitter must be in [0, 1)")


def camera_task(ctx):
    """One camera; ``ctx.params['channel']`` selects left or right."""
    cfg: StereoConfig = ctx.params["cfg"]
    channel: str = ctx.params["channel"]
    ts = 0
    while True:
        jitter = cfg.frame_period * cfg.shutter_jitter
        pause = cfg.frame_period + float(ctx.rng.uniform(-jitter, jitter))
        yield Sleep(max(1e-6, pause))
        yield Put(channel, ts=ts, size=cfg.frame_bytes)
        ts += 1
        yield PeriodicitySync()


def stereo_task(ctx):
    """Join corresponding frames; drop pairs that miss the deadline."""
    cfg: StereoConfig = ctx.params["cfg"]
    while True:
        left = yield Get("C_left")
        right = yield Get("C_right", request=left.ts, timeout=cfg.pair_timeout)
        if right is None:
            ctx.params["dropped_pairs"] = ctx.params.get("dropped_pairs", 0) + 1
            yield PeriodicitySync()
            continue
        if not corresponds(left.ts, right.ts, threshold=cfg.ts_threshold):
            raise AssertionError(  # pragma: no cover - exact get guarantees it
                f"non-corresponding pair {left.ts} / {right.ts}"
            )
        yield Compute(cfg.stereo_cost.sample(ctx.rng, left.ts))
        yield Put("C_depth", ts=left.ts, size=cfg.depth_bytes)
        ctx.params["paired"] = ctx.params.get("paired", 0) + 1
        yield PeriodicitySync()


def viewer_task(ctx):
    cfg: StereoConfig = ctx.params["cfg"]
    while True:
        depth = yield Get("C_depth")
        yield Compute(cfg.viewer_cost.sample(ctx.rng, depth.ts))
        yield PeriodicitySync()


def build_stereo(cfg: StereoConfig | None = None) -> TaskGraph:
    """The two-camera stereo pipeline."""
    cfg = cfg or StereoConfig()
    g = TaskGraph("stereo")
    g.add_thread("cam_left", camera_task, params={"cfg": cfg, "channel": "C_left"})
    g.add_thread("cam_right", camera_task,
                 params={"cfg": cfg, "channel": "C_right"})
    g.add_thread("stereo", stereo_task, params={"cfg": cfg})
    g.add_thread("viewer", viewer_task, sink=True, params={"cfg": cfg})
    g.add_channel("C_left").add_channel("C_right").add_channel("C_depth")
    g.connect("cam_left", "C_left").connect("C_left", "stereo")
    g.connect("cam_right", "C_right").connect("C_right", "stereo")
    g.connect("stereo", "C_depth").connect("C_depth", "viewer")
    g.validate()
    return g
