"""Gesture recognition: the paper's §1 sliding-window workload.

*"A gesture recognition module may need to analyze a sliding window over
a video stream."* The pipeline:

``camera -> C_frames -> features -> C_feat -> recognizer -> C_gest -> ui``

The recognizer keeps the last ``window`` feature items pinned with
``Get(hold=True)``/``Release`` while newer frames keep flowing — the
consumption pattern that makes window consumers both memory-hungry and
dependent on the runtime's reference management. Under ARU the camera
throttles to the recognizer's pace and the pinned window becomes the
dominant (and irreducible) memory term.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.vision import StageCost
from repro.errors import ConfigError
from repro.runtime.graph import TaskGraph
from repro.runtime.syscalls import (
    Compute,
    Get,
    PeriodicitySync,
    Put,
    Release,
    Sleep,
)


@dataclass(frozen=True)
class GestureConfig:
    """Knobs of the gesture-recognition workload."""

    frame_period: float = 1.0 / 30.0
    frame_bytes: int = 300_000
    feature_bytes: int = 20_000
    gesture_bytes: int = 128
    window: int = 8
    feature_cost: StageCost = field(default_factory=lambda: StageCost(0.02, 0.1))
    #: Cost of analyzing the whole window each iteration.
    recognize_cost: StageCost = field(default_factory=lambda: StageCost(0.12, 0.15))
    ui_cost: StageCost = field(default_factory=lambda: StageCost(0.005, 0.05))

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigError("window must be >= 1")


def camera_task(ctx):
    cfg: GestureConfig = ctx.params["cfg"]
    ts = 0
    while True:
        yield Sleep(cfg.frame_period)
        yield Put("C_frames", ts=ts, size=cfg.frame_bytes)
        ts += 1
        yield PeriodicitySync()


def feature_task(ctx):
    cfg: GestureConfig = ctx.params["cfg"]
    while True:
        frame = yield Get("C_frames")
        yield Compute(cfg.feature_cost.sample(ctx.rng, frame.ts))
        yield Put("C_feat", ts=frame.ts, size=cfg.feature_bytes)
        yield PeriodicitySync()


def recognizer_task(ctx):
    """Analyze a sliding window of the most recent feature vectors."""
    cfg: GestureConfig = ctx.params["cfg"]
    window = []
    while True:
        view = yield Get("C_feat", hold=True)
        window.append(view)
        if len(window) > cfg.window:
            yield Release(window.pop(0))
        yield Compute(
            cfg.recognize_cost.sample(ctx.rng, view.ts)
            * len(window) / cfg.window
        )
        yield Put("C_gest", ts=view.ts, size=cfg.gesture_bytes)
        yield PeriodicitySync()


def ui_task(ctx):
    cfg: GestureConfig = ctx.params["cfg"]
    while True:
        gesture = yield Get("C_gest")
        yield Compute(cfg.ui_cost.sample(ctx.rng, gesture.ts))
        yield PeriodicitySync()


def build_gesture(cfg: GestureConfig | None = None) -> TaskGraph:
    """The four-stage gesture pipeline."""
    cfg = cfg or GestureConfig()
    g = TaskGraph("gesture")
    g.add_thread("camera", camera_task, params={"cfg": cfg})
    g.add_thread("features", feature_task, params={"cfg": cfg})
    g.add_thread("recognizer", recognizer_task, params={"cfg": cfg})
    g.add_thread("ui", ui_task, sink=True, params={"cfg": cfg})
    g.add_channel("C_frames").add_channel("C_feat").add_channel("C_gest")
    g.connect("camera", "C_frames").connect("C_frames", "features")
    g.connect("features", "C_feat").connect("C_feat", "recognizer")
    g.connect("recognizer", "C_gest").connect("C_gest", "ui")
    g.validate()
    return g
