"""The color-based people tracker — the paper's evaluation application.

Topology (fig. 5; channels C1–C9):

::

                 +------ C1 -----> ChangeDetection --- C4 ---> TD1
                 |                        \\----------- C5 ---> TD2
    Digitizer ---+------ C2 -----> Histogram -------- C7 ---> TD1
                 |                        \\----------- C8 ---> TD2
                 +------ C3 -----> TD1, TD2
                                   TD1 --- C6 ---> GUI
                                   TD2 --- C9 ---> GUI

Six threads implement the five tasks (two target-detection threads, one
per color model). Item sizes follow §5: frames 738 kB, masks 246 kB,
histogram models 981 kB, detections 68 B.

Every consumer uses get-latest (the ARU assumption of §3.3.3); the GUI is
the sink. :func:`build_tracker` returns the :class:`TaskGraph`;
:func:`tracker_placement` gives the paper's config-2 mapping (channels on
their producers' nodes, one task per node, both detection threads sharing
the detection task's node).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional


from repro.apps import vision
from repro.apps.vision import StageCost
from repro.errors import ConfigError
from repro.runtime.graph import TaskGraph
from repro.runtime.syscalls import CheckDead, Compute, Get, PeriodicitySync, Put, Sleep

FRAME_BYTES = 738_000
MASK_BYTES = 246_000
HIST_BYTES = 981_000
LOCATION_BYTES = 68


@dataclass(frozen=True)
class TrackerConfig:
    """All knobs of the tracker workload.

    Defaults are calibrated so the *shape* of the paper's results holds on
    the simulated cluster: target detection is the bottleneck (~4 fps),
    the digitizer runs at camera rate (30 fps) unless throttled, and the
    two detection threads differ enough for the min/max operator gap to
    show.
    """

    frame_period: float = 1.0 / 30.0
    grab_cost: StageCost = field(default_factory=lambda: StageCost(0.006, 0.08))
    change_detection_cost: StageCost = field(
        default_factory=lambda: StageCost(0.080, 0.12, activity_amp=0.10)
    )
    histogram_cost: StageCost = field(
        default_factory=lambda: StageCost(0.130, 0.12, activity_amp=0.10)
    )
    target_detect1_cost: StageCost = field(
        default_factory=lambda: StageCost(0.175, 0.15, activity_amp=0.15)
    )
    target_detect2_cost: StageCost = field(
        default_factory=lambda: StageCost(0.205, 0.15, activity_amp=0.15)
    )
    gui_cost: StageCost = field(default_factory=lambda: StageCost(0.018, 0.10))
    frame_bytes: int = FRAME_BYTES
    mask_bytes: int = MASK_BYTES
    hist_bytes: int = HIST_BYTES
    location_bytes: int = LOCATION_BYTES
    #: Build real numpy payloads (slower; used by live-threads examples).
    synthesize_payloads: bool = False
    frame_shape: tuple = vision.DEFAULT_FRAME_SHAPE
    #: Optional bound on every channel (items). ``None`` = unbounded
    #: Stampede semantics; a small bound enables the back-pressure
    #: flow-control baseline used by the ablation benches.
    channel_capacity: Optional[int] = None
    #: Upstream computation elimination (the dead-timestamp technique of
    #: the paper's earlier work [6]): mid-pipeline stages skip computing
    #: outputs whose timestamp is already dead downstream. The paper
    #: reports this has "limited success"; the ablation bench measures
    #: how rarely it can fire under get-latest consumption.
    computation_elimination: bool = False

    def with_(self, **changes) -> "TrackerConfig":
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# Task bodies
# ---------------------------------------------------------------------------


def digitizer_task(ctx):
    """Grab a frame every ``frame_period`` and publish it to C1/C2/C3."""
    cfg: TrackerConfig = ctx.params["cfg"]
    ts = 0
    while True:
        grab = cfg.grab_cost.sample(ctx.rng, ts)
        yield Compute(grab)
        yield Sleep(max(0.0, cfg.frame_period - grab))  # camera pacing
        payload = (
            vision.make_frame(ctx.rng, ts, cfg.frame_shape)
            if cfg.synthesize_payloads
            else None
        )
        for chan in ("C1", "C2", "C3"):
            yield Put(chan, ts=ts, size=cfg.frame_bytes, payload=payload)
        ts += 1
        yield PeriodicitySync()


def change_detection_task(ctx):
    """Motion mask from the latest frame -> C4 (for TD1) and C5 (for TD2)."""
    cfg: TrackerConfig = ctx.params["cfg"]
    while True:
        frame = yield Get("C1")
        if cfg.computation_elimination:
            dead4 = yield CheckDead("C4", frame.ts)
            dead5 = yield CheckDead("C5", frame.ts)
            if dead4 and dead5:
                ctx.params["ce_skips"] = ctx.params.get("ce_skips", 0) + 1
                yield PeriodicitySync()
                continue
        yield Compute(cfg.change_detection_cost.sample(ctx.rng, frame.ts))
        payload = (
            vision.background_subtract(frame.payload)
            if cfg.synthesize_payloads and frame.payload is not None
            else None
        )
        yield Put("C4", ts=frame.ts, size=cfg.mask_bytes, payload=payload)
        yield Put("C5", ts=frame.ts, size=cfg.mask_bytes, payload=payload)
        yield PeriodicitySync()


def histogram_task(ctx):
    """Color-histogram model from the latest frame -> C7 and C8."""
    cfg: TrackerConfig = ctx.params["cfg"]
    while True:
        frame = yield Get("C2")
        if cfg.computation_elimination:
            dead7 = yield CheckDead("C7", frame.ts)
            dead8 = yield CheckDead("C8", frame.ts)
            if dead7 and dead8:
                ctx.params["ce_skips"] = ctx.params.get("ce_skips", 0) + 1
                yield PeriodicitySync()
                continue
        yield Compute(cfg.histogram_cost.sample(ctx.rng, frame.ts))
        payload = (
            vision.color_histogram(frame.payload)
            if cfg.synthesize_payloads and frame.payload is not None
            else None
        )
        yield Put("C7", ts=frame.ts, size=cfg.hist_bytes, payload=payload)
        yield Put("C8", ts=frame.ts, size=cfg.hist_bytes, payload=payload)
        yield PeriodicitySync()


def target_detection_task(ctx):
    """Track one color model: latest frame + mask + histogram -> location."""
    cfg: TrackerConfig = ctx.params["cfg"]
    cost: StageCost = ctx.params["cost"]
    mask_chan: str = ctx.params["mask_chan"]
    hist_chan: str = ctx.params["hist_chan"]
    out_chan: str = ctx.params["out_chan"]
    while True:
        frame = yield Get("C3")
        mask = yield Get(mask_chan)
        hist = yield Get(hist_chan)
        if cfg.computation_elimination:
            dead = yield CheckDead(out_chan, frame.ts)
            if dead:
                ctx.params["ce_skips"] = ctx.params.get("ce_skips", 0) + 1
                yield PeriodicitySync()
                continue
        yield Compute(cost.sample(ctx.rng, frame.ts))
        location = None
        if (
            cfg.synthesize_payloads
            and frame.payload is not None
            and mask.payload is not None
            and hist.payload is not None
        ):
            location = vision.detect_target(frame.payload, mask.payload, hist.payload)
        yield Put(out_chan, ts=frame.ts, size=cfg.location_bytes, payload=location)
        yield PeriodicitySync()


def gui_task(ctx):
    """Display the latest detection of each model (the pipeline sink)."""
    cfg: TrackerConfig = ctx.params["cfg"]
    while True:
        loc1 = yield Get("C6")
        yield Get("C9")
        yield Compute(cfg.gui_cost.sample(ctx.rng, loc1.ts))
        yield PeriodicitySync()


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------

THREADS = (
    "digitizer",
    "change_detection",
    "histogram",
    "target_detect1",
    "target_detect2",
    "gui",
)
CHANNELS = ("C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9")


def build_tracker(cfg: Optional[TrackerConfig] = None) -> TaskGraph:
    """The fig.-5 task graph (placement left to the runtime config)."""
    cfg = cfg or TrackerConfig()
    g = TaskGraph("people-tracker")
    g.add_thread("digitizer", digitizer_task, params={"cfg": cfg})
    g.add_thread("change_detection", change_detection_task, params={"cfg": cfg})
    g.add_thread("histogram", histogram_task, params={"cfg": cfg})
    g.add_thread(
        "target_detect1",
        target_detection_task,
        params={
            "cfg": cfg,
            "cost": cfg.target_detect1_cost,
            "mask_chan": "C4",
            "hist_chan": "C7",
            "out_chan": "C6",
        },
    )
    g.add_thread(
        "target_detect2",
        target_detection_task,
        params={
            "cfg": cfg,
            "cost": cfg.target_detect2_cost,
            "mask_chan": "C5",
            "hist_chan": "C8",
            "out_chan": "C9",
        },
    )
    g.add_thread("gui", gui_task, sink=True, params={"cfg": cfg})
    for chan in CHANNELS:
        g.add_channel(chan, capacity=cfg.channel_capacity)
    g.connect("digitizer", "C1").connect("digitizer", "C2").connect("digitizer", "C3")
    g.connect("C1", "change_detection")
    g.connect("C2", "histogram")
    g.connect("C3", "target_detect1").connect("C3", "target_detect2")
    g.connect("change_detection", "C4").connect("change_detection", "C5")
    g.connect("C4", "target_detect1").connect("C5", "target_detect2")
    g.connect("histogram", "C7").connect("histogram", "C8")
    g.connect("C7", "target_detect1").connect("C8", "target_detect2")
    g.connect("target_detect1", "C6").connect("target_detect2", "C9")
    g.connect("C6", "gui").connect("C9", "gui")
    g.validate()
    return g


def tracker_placement(n_nodes: int = 5) -> Dict[str, str]:
    """The paper's config-2 mapping: one task per node, channels with
    their producers (channel placement is derived automatically by the
    runtime, so only threads need entries)."""
    if n_nodes < 5:
        raise ConfigError("config 2 needs at least 5 nodes")
    return {
        "digitizer": "node0",
        "change_detection": "node1",
        "histogram": "node2",
        "target_detect1": "node3",
        "target_detect2": "node3",  # one *task*, two threads share its node
        "gui": "node4",
    }
