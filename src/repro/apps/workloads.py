"""Generic streaming workload generators.

Reusable topology builders for tests, examples, and ablation benches:

* :func:`linear_pipeline` — an N-stage chain;
* :func:`fan_out` — the paper's fig.-3 shape (one producer, K independent
  consumers, one channel each);
* :func:`fan_in` — the paper's fig.-4 shape (one producer feeding K
  buffers that a single consumer joins — full data dependency, the
  topology that justifies the ``max`` operator).

The task bodies are parameterized closures over
:class:`~repro.apps.vision.StageCost` models, so every generated workload
participates fully in STP measurement, ARU feedback, and GC.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.vision import StageCost
from repro.errors import ConfigError
from repro.runtime.graph import TaskGraph
from repro.runtime.syscalls import Compute, Get, PeriodicitySync, Put, Sleep


def make_source(channels: Sequence[str], period: float, size: int,
                cost: Optional[StageCost] = None):
    """A paced source putting one item per period into every channel."""

    def source(ctx):
        ts = 0
        while True:
            work = cost.sample(ctx.rng, ts) if cost else 0.0
            if work > 0:
                yield Compute(work)
            yield Sleep(max(0.0, period - work))
            for chan in channels:
                yield Put(chan, ts=ts, size=size)
            ts += 1
            yield PeriodicitySync()

    return source


def make_worker(in_chans: Sequence[str], out_chans: Sequence[str],
                cost: StageCost, out_size: int):
    """Get-latest from every input, compute, put to every output."""

    def worker(ctx):
        while True:
            views = []
            for chan in in_chans:
                views.append((yield Get(chan)))
            ts = views[0].ts
            yield Compute(cost.sample(ctx.rng, ts))
            for chan in out_chans:
                yield Put(chan, ts=ts, size=out_size)
            yield PeriodicitySync()

    return worker


def make_sink(in_chans: Sequence[str], cost: Optional[StageCost] = None):
    """Get-latest from every input and (optionally) compute."""

    def sink(ctx):
        while True:
            views = []
            for chan in in_chans:
                views.append((yield Get(chan)))
            if cost:
                yield Compute(cost.sample(ctx.rng, views[0].ts))
            yield PeriodicitySync()

    return sink


def linear_pipeline(
    stage_costs: Sequence[StageCost],
    source_period: float = 0.03,
    item_size: int = 100_000,
    name: str = "linear",
) -> TaskGraph:
    """``source -> s0 -> s1 -> ... -> sink`` with one channel per hop.

    The last stage is the sink; ``stage_costs`` parameterizes the workers
    in order.
    """
    if not stage_costs:
        raise ConfigError("need at least one stage")
    g = TaskGraph(name)
    chans = [f"q{i}" for i in range(len(stage_costs))]
    g.add_thread("source", make_source([chans[0]], source_period, item_size))
    for chan in chans:
        g.add_channel(chan)
    g.connect("source", chans[0])
    for i, cost in enumerate(stage_costs):
        stage = f"stage{i}"
        last = i == len(stage_costs) - 1
        if last:
            g.add_thread(stage, make_sink([chans[i]], cost), sink=True)
            g.connect(chans[i], stage)
        else:
            g.add_thread(stage, make_worker([chans[i]], [chans[i + 1]], cost, item_size))
            g.connect(chans[i], stage).connect(stage, chans[i + 1])
    g.validate()
    return g


def fan_out(
    sink_costs: Sequence[StageCost],
    source_period: float = 0.03,
    item_size: int = 100_000,
    name: str = "fan-out",
) -> TaskGraph:
    """Fig.-3 topology: A -> {B..F}, one channel per consumer.

    Each consumer is an independent end point; the conservative ``min``
    operator is the only safe choice here.
    """
    if not sink_costs:
        raise ConfigError("need at least one sink")
    g = TaskGraph(name)
    chans = [f"c{i}" for i in range(len(sink_costs))]
    g.add_thread("A", make_source(chans, source_period, item_size))
    for i, cost in enumerate(sink_costs):
        sink = f"sink{i}"
        g.add_channel(chans[i])
        g.add_thread(sink, make_sink([chans[i]], cost), sink=True)
        g.connect("A", chans[i]).connect(chans[i], sink)
    g.validate()
    return g


def work_queue_pool(
    n_workers: int,
    worker_cost: StageCost,
    sink_cost: Optional[StageCost] = None,
    source_period: float = 0.03,
    item_size: int = 100_000,
    queue_op: Optional[object] = None,
    name: str = "work-pool",
) -> TaskGraph:
    """``source -> queue -> N workers -> results channel -> sink``.

    Each queue item is processed by exactly one worker (work sharing).
    ``queue_op`` sets the queue's ARU compression operator: the default
    ``min`` treats the pool like channel consumers and over-throttles the
    source to a *single* worker's period; the ``"pooled"`` operator
    divides by the pool size and lets ARU sustain the aggregate rate.
    """
    if n_workers < 1:
        raise ConfigError("need at least one worker")
    g = TaskGraph(name)
    g.add_thread("source", make_source(["jobs"], source_period, item_size))
    g.add_queue("jobs", compress_op=queue_op)
    g.add_channel("results")
    g.connect("source", "jobs")

    def worker(ctx):
        while True:
            job = yield Get("jobs")
            yield Compute(worker_cost.sample(ctx.rng, job.ts))
            yield Put("results", ts=job.ts, size=64)
            yield PeriodicitySync()

    for i in range(n_workers):
        w = f"worker{i}"
        g.add_thread(w, worker)
        g.connect("jobs", w).connect(w, "results")
    g.add_thread("collector", make_sink(["results"], sink_cost), sink=True)
    g.connect("results", "collector")
    g.validate()
    return g


def fan_in(
    branch_costs: Sequence[StageCost],
    join_cost: StageCost,
    source_period: float = 0.03,
    item_size: int = 100_000,
    name: str = "fan-in",
) -> TaskGraph:
    """Fig.-4 topology: A -> K buffers -> workers -> K buffers -> G.

    Consumer G joins every branch, so all branches are fully
    data-dependent: the ``max`` operator is valid and maximally saves
    resources.
    """
    if not branch_costs:
        raise ConfigError("need at least one branch")
    g = TaskGraph(name)
    g.add_thread("A", make_source([f"in{i}" for i in range(len(branch_costs))],
                                  source_period, item_size))
    join_inputs = []
    for i, cost in enumerate(branch_costs):
        cin, cout, worker = f"in{i}", f"out{i}", f"branch{i}"
        g.add_channel(cin).add_channel(cout)
        g.add_thread(worker, make_worker([cin], [cout], cost, item_size))
        g.connect("A", cin).connect(cin, worker).connect(worker, cout)
        join_inputs.append(cout)
    g.add_thread("G", make_sink(join_inputs, join_cost), sink=True)
    for chan in join_inputs:
        g.connect(chan, "G")
    g.validate()
    return g
