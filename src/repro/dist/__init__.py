"""Distributed multi-process backend: the same spec over processes and sockets.

The ``proc`` backend in the :mod:`repro.backends` registry. Each cluster
:class:`~repro.cluster.NodeSpec` that hosts work maps to one worker
process (:mod:`repro.dist.worker`); channels whose producer and consumer
land on different nodes become length-prefixed framed TCP connections
(:mod:`repro.dist.framing`, :mod:`repro.dist.wire`); the ARU control
plane is reused verbatim — each worker's sensors read wall-clock STP
locally and summary-STP feedback rides the same connections as the data,
piggybacked on GET requests and PUT acknowledgements plus explicit
FEEDBACK frames after reconnects.

The launcher (:mod:`repro.dist.launcher`) spawns workers, broadcasts the
spec and a shared clock epoch, runs the horizon, then merges per-worker
traces, statistics, and telemetry snapshots into one ordinary
:class:`~repro.experiment.RunResult` — downstream analysis code cannot
tell which backend produced it. Protocol details and fidelity caveats:
``docs/distributed.md``.
"""

from repro.dist.framing import (
    MAX_FRAME,
    Frame,
    FrameDecoder,
    FrameKind,
    encode_frame,
)
from repro.dist.launcher import run_distributed
from repro.dist.plan import DistPlan, build_plan
from repro.dist.wire import ConnectionClosed, FramedConnection

__all__ = [
    "run_distributed",
    "DistPlan",
    "build_plan",
    "FrameKind",
    "Frame",
    "FrameDecoder",
    "encode_frame",
    "MAX_FRAME",
    "FramedConnection",
    "ConnectionClosed",
]
