"""Worker process main: one cluster node of a distributed run.

Launched by :mod:`repro.dist.launcher` as ``python -m repro.dist.worker
HOST PORT INDEX``. The worker dials the launcher's control socket and
walks the session protocol:

1. ``HELLO`` (worker index + pid) →
2. ``CONFIG`` (the pickled :class:`~repro.experiment.ExperimentSpec` +
   this worker's node name) — the worker seeds its item-id counter into
   a private range, recomputes the :class:`~repro.dist.plan.DistPlan`
   (deterministic, no negotiation), builds a :class:`WorkerRuntime`
   hosting its node's threads and channels, and binds a
   :class:`~repro.dist.channels.ChannelServer` →
3. ``READY`` (data port) → ``PEERS`` (everyone's data addresses) —
   remote-channel proxies connect →
4. ``START`` (shared clock epoch ``t0``) — the epoch clock rebases, the
   task threads start →
5. ``STOP`` → wind down, join, then ``STATS`` (trace dict + DES-shaped
   stats + optional telemetry snapshot) and exit.

Any exception is reported as an ``ERROR`` frame (full traceback) before
the process dies, so the launcher can surface the real failure instead
of a timeout.
"""

from __future__ import annotations

import os
import socket
import sys
import time
import traceback
from typing import Dict, Optional, Tuple

from repro.dist.channels import ChannelServer, RemoteChannelClient
from repro.dist.framing import FrameKind
from repro.dist.plan import DistPlan, build_plan
from repro.dist.wire import FramedConnection
from repro.errors import DistError
from repro.metrics.trace_io import trace_to_dict
from repro.rt_threads.executor import ThreadedRuntime
from repro.runtime.item import seed_item_ids
from repro.runtime.retry import RetryPolicy
from repro.vt.clock import EpochClock

#: Each worker's item ids start at ``(index + 1) * ID_STRIDE`` — 2^40
#: ids of headroom per worker, so merged traces cannot collide.
ID_STRIDE = 1 << 40


class WorkerRuntime(ThreadedRuntime):
    """A :class:`ThreadedRuntime` restricted to one plan node.

    Local buffers get real channels (served to peers over TCP); buffers
    on other nodes are reached through
    :class:`~repro.dist.channels.RemoteChannelClient` proxies. Driver
    construction is deferred until :meth:`connect_peers` delivers the
    peer address map.
    """

    def __init__(self, graph, *, aru, seed, compute_mode, node: str,
                 plan: DistPlan, epoch: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None) -> None:
        self._node = node
        self._plan = plan
        self._epoch = epoch
        self._retry = retry or RetryPolicy()
        self._peers: Optional[Dict[str, Tuple[str, int]]] = None
        self.proxies: Dict[Tuple[str, str, str], RemoteChannelClient] = {}
        super().__init__(graph, aru=aru, seed=seed, compute_mode=compute_mode)
        self.node_name = node

    # -- hook overrides ------------------------------------------------
    def _make_clock(self):
        # The launcher broadcasts its epoch in CONFIG, before anything
        # that captures a time (STP meters, the recorder) is built — so
        # every worker's clock shares one base and never jumps.
        return EpochClock(self._epoch)

    def _local_threads(self):
        if self._peers is None:
            return ()
        return self._plan.threads_on(self._node)

    def _local_buffers(self):
        return self._plan.buffers_on(self._node)

    def _make_channel(self, name: str):
        channel = super()._make_channel(name)
        channel.node = self._node
        return channel

    def _channel_for(self, name: str, thread: str, role: str):
        if name in self.channels:
            return self.channels[name]
        proxy = RemoteChannelClient(
            name,
            self._peers[self._plan.buffer_nodes[name]],
            retry=self._retry,
            stop=self.stop_event,
        )
        self.proxies[(name, thread, role)] = proxy
        return proxy

    # -- distributed lifecycle ----------------------------------------
    def connect_peers(self, peers: Dict[str, Tuple[str, int]]) -> None:
        """Accept the peer address map and build this node's drivers."""
        self._peers = dict(peers)
        for name in self._plan.threads_on(self._node):
            self.drivers[name] = self._build_driver(name)

    def close_proxies(self) -> None:
        for proxy in self.proxies.values():
            proxy.close()

    def proxy_bytes(self) -> int:
        total = 0
        for proxy in self.proxies.values():
            total += proxy.bytes_sent + proxy.bytes_received
        return total


def _build_worker_hub(spec, runtime, stats):
    """A per-worker telemetry snapshot, derived at shutdown.

    The live executor is not instrumented on its hot paths (that is a
    sim-backend feature); workers instead fold their end-of-run
    statistics into a real hub so the launcher can merge and the
    existing exporters run unchanged.
    """
    if spec.telemetry in (False, None):
        return None
    from repro.obs import TelemetryConfig, TelemetryHub, resolve_hub

    cfg = spec.telemetry
    if cfg is True:
        cfg = TelemetryConfig(spans=False)
    hub = resolve_hub(cfg)
    if not isinstance(hub, TelemetryHub):
        return None
    hub.bind(time_fn=runtime.clock.now,
             run={"backend": "proc", "node": runtime.node_name})
    m = hub.metrics
    for thread, st in stats["threads"].items():
        m.counter("repro_iterations_total", {"thread": thread}).inc(
            st["iterations"])
    for buf, st in stats["buffers"].items():
        labels = {"buffer": buf}
        m.counter("repro_puts_total", labels).inc(st["puts"])
        m.counter("repro_gets_total", labels).inc(st["gets"])
        m.counter("repro_skips_total", labels).inc(st["skips"])
        m.counter("repro_frees_total", labels).inc(st["frees"])
    hub.on_finalize(stats, runtime.clock.now())
    return hub.snapshot()


def _session(ctl: FramedConnection, worker_index: int) -> None:
    ctl.send(FrameKind.HELLO, {"worker": worker_index, "pid": os.getpid()})
    kind, config = ctl.recv(timeout=60.0)
    if kind != FrameKind.CONFIG:
        raise DistError(f"expected CONFIG, got {FrameKind(kind).name}")
    spec = config["spec"]
    node = config["node"]

    seed_item_ids((worker_index + 1) * ID_STRIDE)
    graph = spec.resolve_graph()
    cluster, placement = spec.resolve_cluster_and_placement()
    plan = build_plan(graph, cluster, placement)
    opts = dict(spec.backend_options)
    runtime = WorkerRuntime(
        graph,
        aru=spec.resolve_policy(),
        seed=spec.seed,
        compute_mode=opts.get("compute_mode", "sleep"),
        node=node,
        plan=plan,
        epoch=config["t0"],
        retry=spec.retry if spec.retry is not None else RetryPolicy(),
    )
    server = ChannelServer(runtime.channels, runtime.stop_event)
    server.start()
    try:
        ctl.send(FrameKind.READY, {"node": node, "port": server.port})

        kind, peers = ctl.recv(timeout=60.0)
        if kind != FrameKind.PEERS:
            raise DistError(f"expected PEERS, got {FrameKind(kind).name}")
        runtime.connect_peers(peers["nodes"])

        kind, _start = ctl.recv(timeout=60.0)
        if kind != FrameKind.START:
            raise DistError(f"expected START, got {FrameKind(kind).name}")
        runtime.start()

        # Run until the launcher says stop (or dies — EOF stops us too).
        deadline = time.time() + spec.horizon + 120.0
        while True:
            try:
                kind, _ = ctl.recv(timeout=max(0.1, deadline - time.time()))
            except socket.timeout:
                raise DistError("launcher never sent STOP") from None
            if kind == FrameKind.STOP:
                break
            raise DistError(f"expected STOP, got {FrameKind(kind).name}")
    finally:
        runtime.stop()
    trace = runtime.join()
    runtime.close_proxies()
    server.close()
    stats = runtime.stats()
    stats["network"]["total_bytes"] = server.total_bytes + runtime.proxy_bytes()
    telemetry = _build_worker_hub(spec, runtime, stats)
    ctl.send(FrameKind.STATS, {
        "node": node,
        "trace": trace_to_dict(trace),
        "stats": stats,
        "telemetry": telemetry,
    })
    try:
        ctl.recv(timeout=10.0)  # BYE (or EOF) — then we are done
    except Exception:
        pass


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 3:
        print("usage: python -m repro.dist.worker HOST PORT INDEX",
              file=sys.stderr)
        return 2
    host, port, worker_index = argv[0], int(argv[1]), int(argv[2])
    sock = socket.create_connection((host, port), timeout=30.0)
    sock.settimeout(None)
    ctl = FramedConnection(sock)
    try:
        _session(ctl, worker_index)
        return 0
    except BaseException:
        try:
            ctl.send(FrameKind.ERROR, {
                "worker": worker_index,
                "message": traceback.format_exc(),
            })
        except Exception:
            pass
        traceback.print_exc()
        return 1
    finally:
        ctl.close()


if __name__ == "__main__":  # pragma: no cover - exercised via launcher
    sys.exit(main())
