"""Fold per-worker outcomes into one DES-shaped result.

Each worker ships a stats dict in exactly the shape
:meth:`repro.runtime.Runtime.stats` produces, restricted to its own
node, channels, and threads. Because the plan partitions those key
spaces disjointly, the merge is mostly dictionary union; only the
engine block (shared wall clock) and the network block (per-worker byte
counters) need arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DistError


def merge_stats(per_worker: Sequence[Dict[str, dict]]) -> Dict[str, dict]:
    """Union per-node stats dicts into one run-wide stats dict."""
    if not per_worker:
        raise DistError("no worker stats to merge")
    merged: Dict[str, dict] = {
        "engine": {
            "now": max(s["engine"]["now"] for s in per_worker),
            "events_processed": sum(
                s["engine"]["events_processed"] for s in per_worker
            ),
        },
        "nodes": {},
        "network": {
            "total_bytes": sum(
                s["network"]["total_bytes"] for s in per_worker
            ),
        },
        "buffers": {},
        "threads": {},
    }
    for section in ("nodes", "buffers", "threads"):
        for stats in per_worker:
            for name, entry in stats[section].items():
                if name in merged[section]:
                    raise DistError(
                        f"{section[:-1]} {name!r} reported by two workers; "
                        f"the partition plans disagree"
                    )
                merged[section][name] = entry
    return merged


@dataclass
class WorkerInfo:
    """One worker process's identity and exit, for post-run inspection."""

    index: int
    node: str
    pid: Optional[int] = None
    port: Optional[int] = None
    returncode: Optional[int] = None


@dataclass
class DistRunInfo:
    """What ``RunResult.runtime`` holds for a distributed run.

    The live per-node runtimes died with their processes; this keeps
    the partition plan, the worker roster, and the shared epoch so
    reports and tests can still ask "what ran where".
    """

    plan: object
    workers: List[WorkerInfo] = field(default_factory=list)
    t0: float = 0.0

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(w.node for w in self.workers)
