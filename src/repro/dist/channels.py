"""Data plane: Stampede channels stretched over framed TCP.

One side of every cross-node channel is real — the
:class:`~repro.rt_threads.channel.ThreadChannel` living on the buffer's
plan node, fully authoritative for ordering, skipping, DGC, and ARU
state. The other side is a :class:`RemoteChannelClient` proxy that
speaks the same driver-facing surface (``register_producer`` /
``register_consumer`` / ``get`` / ``try_get`` / ``put`` / ``release`` /
``check_dead``) over one dedicated TCP connection per (thread, channel)
role.

Feedback interleaves with data on that connection, in-band (the
punctuation-paper model): every GET/TRY_GET request carries the
consumer's current summary STP forward to the channel's ARU state, every
PUT_ACK carries the channel's summary back to the producer — exactly
the piggyback points the in-process executors use — and an explicit
FEEDBACK frame re-advertises the consumer's last summary after a
reconnect, because the server-side cursor registration (and its
backward-propagation slot) is per-connection state.

Failure semantics: a dropped connection surfaces as
:class:`~repro.dist.wire.ConnectionClosed`; the proxy reconnects under
the spec's :class:`~repro.runtime.retry.RetryPolicy`, re-OPENs with its
last consumed timestamp so the cursor resumes, and re-sends the request.
A re-sent PUT that already landed is recognized by the server's
duplicate-timestamp rejection and treated as acknowledged
(at-least-once put, exactly-once channel state).
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.dist.framing import FrameKind
from repro.dist.wire import ConnectionClosed, FramedConnection, connect
from repro.errors import DistError, ReproError, SimulationError
from repro.runtime.item import Item, ItemView
from repro.runtime.retry import RetryPolicy
from repro.vt.timestamp import EARLIEST, LATEST

#: How long one server-side blocking-get poll lasts. The client re-polls
#: with a fresh consumer summary each cycle, keeping the connection
#: responsive to shutdown and the feedback in-band and current.
POLL_SECONDS = 0.25

#: Socket-read slack on top of a poll so a busy server doesn't look dead.
_REPLY_SLACK = 5.0


def _encode_request(request) -> object:
    if request is LATEST:
        return "latest"
    if request is EARLIEST:
        return "earliest"
    return int(request)


def _decode_request(enc):
    if enc == "latest":
        return LATEST
    if enc == "earliest":
        return EARLIEST
    return int(enc)


def item_to_wire(item: Item) -> dict:
    return {
        "item_id": item.item_id,
        "ts": item.ts,
        "size": item.size,
        "payload": item.payload,
        "producer": item.producer,
        "parents": tuple(item.parents),
        "created_at": item.created_at,
    }


def item_from_wire(data: dict) -> Item:
    item = Item(
        ts=data["ts"],
        size=data["size"],
        payload=data["payload"],
        producer=data["producer"],
        parents=data["parents"],
        created_at=data["created_at"],
    )
    # Restore the producer-assigned id: lineage in the merged trace must
    # reference the id the producing worker recorded.
    item.item_id = data["item_id"]
    return item


class RemoteConn:
    """The connection handle a driver holds for a remote channel."""

    __slots__ = ("conn_id", "thread", "buffer", "role")

    def __init__(self, conn_id: int, thread: str, buffer: str, role: str) -> None:
        self.conn_id = conn_id
        self.thread = thread
        self.buffer = buffer
        self.role = role


class _ServerError(DistError):
    """The channel server reported an application-level error."""


class _ShutdownDrop(DistError):
    """Connection lost while the runtime is stopping.

    During wind-down, peers close their channel servers as soon as their
    own threads have joined, so late requests from slower nodes can hit
    a dead socket. The operation is moot — the server's per-session
    cleanup releases any references the peer still held — so callers
    treat this as a benign miss rather than a transport failure.
    """


class RemoteChannelClient:
    """Proxy for a channel hosted on another worker.

    One instance per (thread, channel) role; owns one TCP connection,
    used strictly request/reply so no correlation ids are needed.
    """

    kind = "channel"

    def __init__(
        self,
        buffer: str,
        address: Tuple[str, int],
        retry: Optional[RetryPolicy] = None,
        stop: Optional[threading.Event] = None,
    ) -> None:
        self.name = buffer
        self._address = address
        self._retry = retry or RetryPolicy()
        self._stop = stop
        self._conn: Optional[FramedConnection] = None
        self._conn_id: Optional[int] = None
        self._thread: Optional[str] = None
        self._role: Optional[str] = None
        self._last_got = -1
        self._last_summary: Optional[float] = None
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- registration --------------------------------------------------
    def register_consumer(self, thread: str) -> RemoteConn:
        return self._register(thread, "consumer")

    def register_producer(self, thread: str) -> RemoteConn:
        return self._register(thread, "producer")

    def _register(self, thread: str, role: str) -> RemoteConn:
        if self._role is not None:
            raise SimulationError(
                f"remote channel proxy for {self.name!r} is single-role; "
                f"already registered as {self._role}"
            )
        self._thread = thread
        self._role = role
        conn_id = self._ensure_open()
        return RemoteConn(conn_id, thread, self.name, role)

    def _ensure_open(self) -> int:
        """(Re)connect and (re)register; returns the server conn_id."""
        if self._conn is not None:
            return self._conn_id
        conn = connect(
            self._address[0], self._address[1],
            retry=self._retry, stop=self._stop,
        )
        try:
            conn.send(FrameKind.OPEN, {
                "buffer": self.name,
                "thread": self._thread,
                "role": self._role,
                "last_got": self._last_got,
            })
            kind, reply = conn.recv(timeout=_REPLY_SLACK)
            self._check_reply(kind, reply, FrameKind.OPEN_OK)
            conn_id = reply["conn_id"]
            if self._role == "consumer" and self._last_summary is not None:
                # Re-advertise backward feedback lost with the old
                # connection's registration.
                conn.send(FrameKind.FEEDBACK, {"summary": self._last_summary})
                kind, reply = conn.recv(timeout=_REPLY_SLACK)
                self._check_reply(kind, reply, FrameKind.FEEDBACK_OK)
        except BaseException:
            conn.close()
            raise
        self._conn = conn
        self._conn_id = conn_id
        return conn_id

    def _check_reply(self, kind, reply, expected: FrameKind) -> None:
        if kind == FrameKind.ERROR:
            raise _ServerError(reply["message"])
        if kind != expected:
            raise DistError(
                f"channel {self.name!r}: expected {expected.name}, "
                f"got {FrameKind(kind).name}"
            )

    def _drop_connection(self) -> None:
        if self._conn is not None:
            self.bytes_sent += self._conn.bytes_sent
            self.bytes_received += self._conn.bytes_received
            self._conn.close()
            self._conn = None

    def _request(self, kind: FrameKind, payload: dict, expected: FrameKind,
                 reply_timeout: float) -> dict:
        """One request/reply with reconnect-and-resend under the policy."""
        attempt = 0
        while True:
            try:
                self._ensure_open()
                self._conn.send(kind, payload)
                rkind, reply = self._conn.recv(timeout=reply_timeout)
                self._check_reply(rkind, reply, expected)
                return reply
            except _ServerError as exc:
                if (kind == FrameKind.PUT and attempt > 0
                        and "duplicate timestamp" in str(exc)):
                    # The pre-drop PUT landed; the retry was the duplicate.
                    return {"summary": None}
                raise
            except (ConnectionClosed, DistError, socket.timeout) as exc:
                self._drop_connection()
                attempt += 1
                if self._stop is not None and self._stop.is_set():
                    raise _ShutdownDrop(
                        f"channel {self.name!r}: {kind.name} dropped at "
                        f"shutdown: {exc}"
                    ) from exc
                if self._retry.exhausted(attempt):
                    raise DistError(
                        f"channel {self.name!r}: {kind.name} failed after "
                        f"{attempt} attempts: {exc}"
                    ) from exc
                time.sleep(self._retry.backoff(attempt))

    # -- driver-facing surface -----------------------------------------
    def get(self, conn: RemoteConn, request=LATEST,
            consumer_summary: Optional[float] = None,
            stop: Optional[threading.Event] = None,
            timeout: float = 0.05,
            max_wait: Optional[float] = None) -> Optional[ItemView]:
        """Blocking get via short server-side polls.

        Each poll is one GET frame carrying the consumer's current
        summary (feedback and data interleave on the wire by
        construction); the server blocks up to :data:`POLL_SECONDS` per
        poll, so stop events and deadlines are honored promptly.
        """
        stop = stop or self._stop
        remaining = max_wait
        while True:
            if stop is not None and stop.is_set():
                return None
            chunk = POLL_SECONDS if remaining is None else min(POLL_SECONDS, remaining)
            try:
                reply = self._request(
                    FrameKind.GET,
                    {
                        "request": _encode_request(request),
                        "summary": consumer_summary,
                        "max_wait": chunk,
                    },
                    FrameKind.GET_REPLY,
                    reply_timeout=chunk + _REPLY_SLACK,
                )
            except _ShutdownDrop:
                return None
            if consumer_summary is not None:
                self._last_summary = consumer_summary
            if reply["item"] is not None:
                item = item_from_wire(reply["item"])
                self._last_got = max(self._last_got, item.ts)
                return ItemView(item, self.name)
            if remaining is not None:
                remaining -= chunk
                if remaining <= 0:
                    return None

    def try_get(self, conn: RemoteConn, request=LATEST,
                consumer_summary: Optional[float] = None) -> Optional[ItemView]:
        try:
            reply = self._request(
                FrameKind.TRY_GET,
                {"request": _encode_request(request),
                 "summary": consumer_summary},
                FrameKind.GET_REPLY,
                reply_timeout=_REPLY_SLACK,
            )
        except _ShutdownDrop:
            return None
        if consumer_summary is not None:
            self._last_summary = consumer_summary
        if reply["item"] is None:
            return None
        item = item_from_wire(reply["item"])
        self._last_got = max(self._last_got, item.ts)
        return ItemView(item, self.name)

    def put(self, conn: RemoteConn, item: Item) -> Optional[float]:
        try:
            reply = self._request(
                FrameKind.PUT,
                {"item": item_to_wire(item)},
                FrameKind.PUT_ACK,
                reply_timeout=_REPLY_SLACK,
            )
        except _ShutdownDrop:
            return None
        return reply["summary"]

    def release(self, item: Item) -> None:
        try:
            self._request(
                FrameKind.RELEASE,
                {"item_id": item.item_id},
                FrameKind.RELEASE_OK,
                reply_timeout=_REPLY_SLACK,
            )
        except _ShutdownDrop:
            return  # the server's session cleanup releases our refs

    def check_dead(self, ts: int) -> bool:
        try:
            reply = self._request(
                FrameKind.CHECK_DEAD,
                {"ts": int(ts)},
                FrameKind.CHECK_DEAD_OK,
                reply_timeout=_REPLY_SLACK,
            )
        except _ShutdownDrop:
            return False
        return bool(reply["dead"])

    def close(self) -> None:
        self._drop_connection()


class ChannelServer:
    """Serves a worker's local channels to remote peers over TCP.

    One acceptor thread plus one handler thread per client connection;
    each handler serves the sequential request/reply protocol of exactly
    one :class:`RemoteChannelClient`. Handlers track the items a client
    holds so an abrupt peer death releases its references instead of
    leaking them into the DGC threshold.
    """

    def __init__(self, channels: Dict[str, object],
                 stop: threading.Event,
                 host: str = "127.0.0.1") -> None:
        self.channels = channels
        self.stop_event = stop
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, 0))
        self._sock.listen(64)
        self._sock.settimeout(0.25)
        self.host, self.port = self._sock.getsockname()
        self._lock = threading.Lock()
        self._conns: List[FramedConnection] = []
        self._handlers: List[threading.Thread] = []
        self._closed_bytes = 0
        self._closed = False
        self._acceptor = threading.Thread(
            target=self._accept_loop, name=f"chan-server-{self.port}", daemon=True
        )

    def start(self) -> None:
        self._acceptor.start()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn = FramedConnection(sock)
            handler = threading.Thread(
                target=self._serve, args=(conn,),
                name=f"chan-handler-{self.port}", daemon=True,
            )
            with self._lock:
                self._conns.append(conn)
                self._handlers.append(handler)
            handler.start()

    def _serve(self, conn: FramedConnection) -> None:
        session = _Session(self)
        try:
            while not self._closed:
                try:
                    kind, payload = conn.recv(timeout=0.5)
                except socket.timeout:
                    continue
                except ConnectionClosed:
                    return
                try:
                    reply_kind, reply = session.handle(kind, payload)
                except ReproError as exc:
                    conn.send(FrameKind.ERROR, {"message": str(exc)})
                    continue
                conn.send(reply_kind, reply)
        except ConnectionClosed:
            return
        finally:
            session.release_held()
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)
                self._closed_bytes += conn.bytes_sent + conn.bytes_received
            conn.close()

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        with self._lock:
            live = sum(c.bytes_sent + c.bytes_received for c in self._conns)
            return self._closed_bytes + live

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
            handlers = list(self._handlers)
        for conn in conns:
            conn.close()
        for handler in handlers:
            handler.join(timeout=2.0)


class _Session:
    """Per-connection server state: the OPENed channel and held items."""

    def __init__(self, server: ChannelServer) -> None:
        self.server = server
        self.channel = None
        self.cursor = None
        self.role: Optional[str] = None
        self.held: Dict[int, Item] = {}

    def handle(self, kind: FrameKind, payload) -> Tuple[FrameKind, object]:
        if kind == FrameKind.OPEN:
            return self._open(payload)
        if self.channel is None:
            raise DistError(f"{FrameKind(kind).name} before OPEN")
        if kind == FrameKind.GET:
            view = self.channel.get(
                self.cursor,
                _decode_request(payload["request"]),
                consumer_summary=payload["summary"],
                stop=self.server.stop_event,
                max_wait=payload["max_wait"],
            )
            return self._item_reply(view)
        if kind == FrameKind.TRY_GET:
            view = self.channel.try_get(
                self.cursor,
                _decode_request(payload["request"]),
                consumer_summary=payload["summary"],
            )
            return self._item_reply(view)
        if kind == FrameKind.PUT:
            item = item_from_wire(payload["item"])
            summary = self.channel.put(self.cursor, item)
            return (FrameKind.PUT_ACK, {"summary": summary})
        if kind == FrameKind.RELEASE:
            item = self.held.pop(payload["item_id"], None)
            if item is None:
                raise DistError(
                    f"RELEASE of item {payload['item_id']} not held here"
                )
            self.channel.release(item)
            return (FrameKind.RELEASE_OK, None)
        if kind == FrameKind.CHECK_DEAD:
            return (
                FrameKind.CHECK_DEAD_OK,
                {"dead": self.channel.check_dead(payload["ts"])},
            )
        if kind == FrameKind.FEEDBACK:
            if self.channel.aru is not None and payload["summary"] is not None:
                self.channel.aru.update_backward(
                    self.cursor.conn_id, payload["summary"]
                )
            return (FrameKind.FEEDBACK_OK, None)
        raise DistError(f"unexpected frame {FrameKind(kind).name} on data plane")

    def _open(self, payload) -> Tuple[FrameKind, object]:
        buffer = payload["buffer"]
        channel = self.server.channels.get(buffer)
        if channel is None:
            raise DistError(f"no local channel {buffer!r} on this worker")
        role = payload["role"]
        if role == "consumer":
            channel.evict_consumer(payload["thread"])
            cursor = channel.register_consumer(payload["thread"])
            if payload.get("last_got", -1) > cursor.last_got:
                # Reconnect: resume the consumer's cursor so items it
                # already consumed are not re-delivered.
                cursor.last_got = payload["last_got"]
        elif role == "producer":
            cursor = channel.register_producer(payload["thread"])
        else:
            raise DistError(f"unknown OPEN role {role!r}")
        self.channel = channel
        self.cursor = cursor
        self.role = role
        return (FrameKind.OPEN_OK, {"conn_id": cursor.conn_id})

    def _item_reply(self, view) -> Tuple[FrameKind, object]:
        if view is None:
            return (FrameKind.GET_REPLY, {"item": None})
        self.held[view.item_id] = view._item
        return (FrameKind.GET_REPLY, {"item": item_to_wire(view._item)})

    def release_held(self) -> None:
        """Release references an abruptly-dead peer left behind."""
        for item in self.held.values():
            try:
                self.channel.release(item)
            except ReproError:
                pass
        self.held.clear()
