"""The ``proc`` backend: one worker process per cluster node.

:func:`run_distributed` is the registered runner behind
``ExperimentSpec(backend="proc")``. It partitions the spec's graph with
:func:`~repro.dist.plan.build_plan`, spawns ``python -m
repro.dist.worker`` once per plan node, and drives the control protocol
over framed TCP::

    launcher                         worker[i]
    --------                         ---------
                       <- HELLO      (index, pid)
    CONFIG ->                        (pickled spec + node name)
                       <- READY      (data-plane port)
    PEERS ->                         (node -> address map; proxies dial)
    START ->                         (shared epoch t0)
        ... spec.horizon wall seconds of streaming ...
    STOP ->
                       <- STATS      (trace + stats + telemetry snapshot)
    BYE ->

Workers rebase their clocks to the broadcast ``t0``, so the per-worker
traces share one time axis and merge by pure union
(:func:`~repro.metrics.trace_io.merge_traces`); stats dictionaries union
the same way (:func:`~repro.dist.result.merge_stats`); telemetry
snapshots fold through :func:`~repro.obs.merge.merge_snapshots`. The
caller gets back an ordinary :class:`~repro.experiment.RunResult` whose
``runtime`` is a :class:`~repro.dist.result.DistRunInfo`.

A worker that dies or stalls fails the run loudly: every protocol step
has a deadline, ``ERROR`` frames carry the worker's traceback, and on
any failure the launcher kills the remaining workers and raises
:class:`~repro.errors.DistError` with the dead worker's stderr tail.
"""

from __future__ import annotations

import os
import pickle
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.dist.framing import FrameKind
from repro.dist.plan import build_plan
from repro.dist.result import DistRunInfo, WorkerInfo, merge_stats
from repro.dist.wire import ConnectionClosed, FramedConnection
from repro.errors import ConfigError, DistError

#: Deadline for each control-protocol step (handshake, READY, STATS).
STEP_TIMEOUT = 60.0

_PROC_OPTIONS = ("compute_mode", "step_timeout")


class _Worker:
    """Launcher-side handle for one worker process."""

    def __init__(self, index: int, node: str, proc, stderr_path: Path) -> None:
        self.index = index
        self.node = node
        self.proc = proc
        self.stderr_path = stderr_path
        self.conn: Optional[FramedConnection] = None
        self.port: Optional[int] = None

    def stderr_tail(self, limit: int = 4000) -> str:
        try:
            text = self.stderr_path.read_text(errors="replace")
        except OSError:
            return ""
        return text[-limit:]

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()


def _validate(spec) -> dict:
    opts = dict(spec.backend_options)
    unknown = sorted(set(opts) - set(_PROC_OPTIONS))
    if unknown:
        raise ConfigError(
            f"unknown proc backend_options {unknown}; "
            f"expected: {', '.join(_PROC_OPTIONS)}"
        )
    faults = spec.faults
    if faults is not None:
        from repro.faults import FaultSchedule

        if not isinstance(faults, FaultSchedule):
            faults = FaultSchedule(tuple(faults))
        if not faults.is_empty:
            raise ConfigError(
                "the proc backend does not script faults; its failures are "
                "real (kill a worker, drop a connection) and handled by the "
                "RetryPolicy — use backend='sim' for scheduled fault "
                "injection"
            )
    scale = spec.resolve_scale_policy()
    if scale is not None and scale.enabled:
        # A disabled ScaleConfig (e.g. the registered "no-scale") is a
        # no-op and fine; only an *active* scaler needs the simulator.
        raise ConfigError(
            "the proc backend does not support elastic scaling; "
            "use backend='sim'"
        )
    from repro.obs import TelemetryHub

    if isinstance(spec.telemetry, TelemetryHub):
        raise ConfigError(
            "a pre-built TelemetryHub cannot cross process boundaries; "
            "pass telemetry=True or a TelemetryConfig to backend='proc'"
        )
    return opts


def _pickled_spec(spec) -> "object":
    """The spec workers receive; fails fast when it cannot travel."""
    wire_spec = spec.with_(telemetry=_picklable_telemetry(spec.telemetry))
    try:
        pickle.dumps(wire_spec)
    except Exception as exc:
        raise ConfigError(
            f"spec cannot cross the process boundary ({exc}); graphs built "
            f"from closures/lambdas are sim-only — use module-level task "
            f"functions or a builtin app name for backend='proc'"
        ) from exc
    return wire_spec


def _picklable_telemetry(value):
    if value in (False, None, True):
        return bool(value)
    return value  # TelemetryConfig is a plain frozen dataclass


def _recv_step(worker: _Worker, expected: FrameKind, timeout: float):
    """One protocol step; ERROR frames and dead sockets become DistError."""
    try:
        kind, payload = worker.conn.recv(timeout=timeout)
    except socket.timeout:
        raise DistError(
            f"worker {worker.index} ({worker.node}) missed the "
            f"{expected.name} deadline ({timeout:.0f}s)"
        ) from None
    except ConnectionClosed:
        raise DistError(
            f"worker {worker.index} ({worker.node}) died before "
            f"{expected.name}\n--- worker stderr ---\n{worker.stderr_tail()}"
        ) from None
    if kind == FrameKind.ERROR:
        raise DistError(
            f"worker {worker.index} ({worker.node}) failed:\n"
            f"{payload.get('message', payload)}"
        )
    if kind != expected:
        raise DistError(
            f"worker {worker.index} ({worker.node}): expected "
            f"{expected.name}, got {FrameKind(kind).name}"
        )
    return payload


def _spawn_workers(nodes, host: str, port: int, tmpdir: Path) -> List[_Worker]:
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + (os.pathsep + existing if existing else "")
    )
    workers = []
    for index, node in enumerate(nodes):
        stderr_path = tmpdir / f"worker-{index}-{node}.stderr"
        with open(stderr_path, "wb") as stderr_f:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.dist.worker",
                 host, str(port), str(index)],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=stderr_f,
            )
        workers.append(_Worker(index, node, proc, stderr_path))
    return workers


def _accept_all(server: socket.socket, workers: List[_Worker],
                timeout: float) -> None:
    """Accept one control connection per worker and match on HELLO."""
    by_index = {w.index: w for w in workers}
    deadline = time.time() + timeout
    pending = set(by_index)
    while pending:
        server.settimeout(max(0.1, deadline - time.time()))
        try:
            sock, _addr = server.accept()
        except socket.timeout:
            dead = ", ".join(
                f"{by_index[i].node} (stderr: {by_index[i].stderr_tail(800)})"
                for i in sorted(pending)
            )
            raise DistError(
                f"workers never connected: {dead}"
            ) from None
        sock.settimeout(None)
        conn = FramedConnection(sock)
        kind, hello = conn.recv(timeout=STEP_TIMEOUT)
        if kind != FrameKind.HELLO:
            conn.close()
            raise DistError(f"expected HELLO, got {FrameKind(kind).name}")
        index = hello["worker"]
        if index not in pending:
            conn.close()
            raise DistError(f"unexpected worker index {index} in HELLO")
        pending.discard(index)
        by_index[index].conn = conn


def run_distributed(spec) -> "object":
    """Run a spec across one worker process per cluster node."""
    from repro.experiment import RunResult
    from repro.metrics.trace_io import merge_traces, trace_from_dict
    from repro.obs import NULL_HUB, hub_from_snapshot, merge_snapshots

    opts = _validate(spec)
    step_timeout = float(opts.get("step_timeout", STEP_TIMEOUT))
    wire_spec = _pickled_spec(spec)

    graph = spec.resolve_graph()
    cluster, placement = spec.resolve_cluster_and_placement()
    plan = build_plan(graph, cluster, placement)
    if not plan.nodes:
        raise ConfigError("the plan assigns work to no cluster node")

    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind(("127.0.0.1", 0))
    server.listen(len(plan.nodes))
    host, port = server.getsockname()

    workers: List[_Worker] = []
    t0 = 0.0
    try:
        with tempfile.TemporaryDirectory(prefix="repro-dist-") as tmp:
            tmpdir = Path(tmp)
            workers = _spawn_workers(plan.nodes, host, port, tmpdir)
            _accept_all(server, workers, step_timeout)
            # The shared epoch: every worker clock reads seconds since
            # this instant, so merged traces sit on one time axis.
            t0 = time.time()
            for w in workers:
                w.conn.send(FrameKind.CONFIG, {
                    "spec": wire_spec,
                    "node": w.node,
                    "worker_index": w.index,
                    "n_workers": len(workers),
                    "t0": t0,
                })
            peers: Dict[str, Tuple[str, int]] = {}
            for w in workers:
                ready = _recv_step(w, FrameKind.READY, step_timeout)
                w.port = ready["port"]
                peers[w.node] = ("127.0.0.1", ready["port"])
            for w in workers:
                w.conn.send(FrameKind.PEERS, {"nodes": peers})
            for w in workers:
                w.conn.send(FrameKind.START, {"t0": t0})
            wake = time.time() + spec.horizon
            while True:
                remaining = wake - time.time()
                if remaining <= 0:
                    break
                time.sleep(min(remaining, 0.5))
                for w in workers:
                    if w.proc.poll() is not None:
                        raise DistError(
                            f"worker {w.index} ({w.node}) died mid-run "
                            f"(exit {w.proc.returncode})\n--- worker stderr "
                            f"---\n{w.stderr_tail()}"
                        )
            for w in workers:
                w.conn.send(FrameKind.STOP, None)
            reports = []
            for w in workers:
                reports.append(_recv_step(w, FrameKind.STATS, step_timeout))
            for w in workers:
                w.conn.send(FrameKind.BYE, None)
                w.conn.close()
            for w in workers:
                try:
                    w.proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    w.kill()
                    w.proc.wait(timeout=5.0)
    except BaseException:
        for w in workers:
            w.kill()
            if w.conn is not None:
                w.conn.close()
        raise
    finally:
        server.close()

    trace = merge_traces([trace_from_dict(r["trace"]) for r in reports])
    stats = merge_stats([r["stats"] for r in reports])
    if spec.telemetry in (False, None):
        telemetry = NULL_HUB
    else:
        telemetry = hub_from_snapshot(
            merge_snapshots([r["telemetry"] for r in reports])
        )
    info = DistRunInfo(
        plan=plan,
        workers=[
            WorkerInfo(index=w.index, node=w.node, pid=w.proc.pid,
                       port=w.port, returncode=w.proc.returncode)
            for w in workers
        ],
        t0=t0,
    )
    return RunResult(
        spec=spec,
        trace=trace,
        stats=stats,
        telemetry=telemetry,
        fault_log=None,
        runtime=info,
    )
