"""Length-prefixed frame codec for the distributed backend's wire protocol.

Every message between launcher, workers, and channel peers is one frame:

    +------+----------------+=================+
    | kind | payload length |  payload bytes  |
    | 1 B  |  4 B big-end.  |  (pickled obj)  |
    +------+----------------+=================+

The codec layer is bytes-only (payload encoding lives in
:mod:`repro.dist.wire`), incremental, and strict: an unknown kind byte or
a length above :data:`MAX_FRAME` raises
:class:`~repro.errors.FrameError` immediately — a corrupted stream must
never be silently resynchronized. :class:`FrameDecoder` accepts
arbitrarily fragmented input (``feed`` may deliver half a header, ten
frames, or one byte at a time) which is exactly what TCP delivers.

Control-plane kinds (launcher <-> worker) and data-plane kinds (channel
proxy <-> channel server) share one numbering so feedback and data
frames can interleave on a single connection.
"""

from __future__ import annotations

import enum
import struct
from typing import List, NamedTuple

from repro.errors import FrameError

#: Refuse frames above this payload size (a length field this large is
#: a corrupted or hostile stream, not a real item).
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">BI")
HEADER_SIZE = _HEADER.size


class FrameKind(enum.IntEnum):
    """Every frame kind on the wire (control plane + data plane)."""

    # -- control plane: launcher <-> worker ---------------------------
    HELLO = 1          #: worker -> launcher: I exist (worker index, pid)
    CONFIG = 2         #: launcher -> worker: the pickled spec + node
    READY = 3          #: worker -> launcher: channels bound (data port)
    PEERS = 4          #: launcher -> worker: node -> (host, port) map
    START = 5          #: launcher -> worker: shared clock epoch t0
    STOP = 6           #: launcher -> worker: wind down now
    STATS = 7          #: worker -> launcher: trace + stats + telemetry
    ERROR = 8          #: either direction: fatal error (traceback text)
    BYE = 9            #: acknowledged shutdown

    # -- data plane: channel proxy <-> channel server -----------------
    OPEN = 16          #: register a producer/consumer connection
    OPEN_OK = 17       #: registration reply (conn_id)
    GET = 18           #: blocking get poll (carries consumer summary)
    GET_REPLY = 19     #: item or none
    TRY_GET = 20       #: non-blocking get (carries consumer summary)
    PUT = 21           #: item insert
    PUT_ACK = 22       #: put reply (carries channel summary feedback)
    RELEASE = 23       #: consumer done with a held item
    RELEASE_OK = 24    #: release reply
    CHECK_DEAD = 25    #: producer probes consumer cursors
    CHECK_DEAD_OK = 26 #: probe reply
    FEEDBACK = 27      #: standalone summary-STP push (e.g. on reconnect)
    FEEDBACK_OK = 28   #: feedback reply


_KNOWN_KINDS = frozenset(int(k) for k in FrameKind)


class Frame(NamedTuple):
    """One decoded frame: its kind and raw payload bytes."""

    kind: FrameKind
    payload: bytes


def encode_frame(kind: FrameKind, payload: bytes = b"") -> bytes:
    """Serialize one frame to bytes."""
    if len(payload) > MAX_FRAME:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte limit"
        )
    return _HEADER.pack(int(FrameKind(kind)), len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder over a fragmented byte stream."""

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def mid_frame(self) -> bool:
        """True when buffered bytes form a partial frame (an EOF here is
        an abrupt peer close, not a clean shutdown)."""
        return len(self._buf) > 0

    def feed(self, data: bytes) -> List[Frame]:
        """Absorb ``data``; return every frame completed by it."""
        self._buf.extend(data)
        frames: List[Frame] = []
        while True:
            if len(self._buf) < HEADER_SIZE:
                return frames
            kind, length = _HEADER.unpack_from(self._buf)
            if kind not in _KNOWN_KINDS:
                raise FrameError(f"unknown frame kind byte {kind}")
            if length > MAX_FRAME:
                raise FrameError(
                    f"declared frame length {length} exceeds the "
                    f"{MAX_FRAME}-byte limit"
                )
            end = HEADER_SIZE + length
            if len(self._buf) < end:
                return frames
            payload = bytes(self._buf[HEADER_SIZE:end])
            del self._buf[:end]
            frames.append(Frame(FrameKind(kind), payload))
