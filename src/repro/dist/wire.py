"""Framed TCP transport: sockets in, whole typed messages out.

:class:`FramedConnection` wraps one connected socket with the
:mod:`repro.dist.framing` codec and pickle payloads: ``send(kind, obj)``
writes one frame atomically (a lock serializes concurrent senders);
``recv()`` returns the next ``(kind, obj)``, reading and buffering as
much of the stream as the OS delivers. Byte counters feed the merged
``network.total_bytes`` statistic.

End-of-stream is classified, because the distributed failure semantics
depend on it: an EOF on a frame boundary raises
:class:`ConnectionClosed` with ``clean=True`` (orderly peer shutdown);
an EOF mid-frame raises it with ``clean=False`` (the peer died or the
link dropped — the caller's :class:`~repro.runtime.retry.RetryPolicy`
decides what happens next).
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
from typing import Any, Optional, Tuple

from repro.dist.framing import FrameKind, FrameDecoder, encode_frame
from repro.errors import DistError
from repro.runtime.retry import RetryPolicy

_RECV_CHUNK = 1 << 16


class ConnectionClosed(DistError):
    """The peer closed the connection.

    ``clean`` distinguishes an orderly shutdown (EOF on a frame
    boundary) from an abrupt drop mid-frame.
    """

    def __init__(self, message: str, clean: bool) -> None:
        super().__init__(message)
        self.clean = clean


class FramedConnection:
    """One framed, typed, thread-safe-to-send TCP connection."""

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._decoder = FrameDecoder()
        self._pending: list = []
        self._send_lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0
        self._closed = False

    # ------------------------------------------------------------------
    def send(self, kind: FrameKind, obj: Any = None) -> None:
        """Pickle ``obj`` and write it as one ``kind`` frame."""
        data = encode_frame(kind, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        with self._send_lock:
            try:
                self._sock.sendall(data)
            except OSError as exc:
                raise ConnectionClosed(
                    f"send of {FrameKind(kind).name} failed: {exc}", clean=False
                ) from exc
            self.bytes_sent += len(data)

    def recv(self, timeout: Optional[float] = None) -> Tuple[FrameKind, Any]:
        """Next ``(kind, payload object)``; blocks up to ``timeout``.

        Raises :class:`ConnectionClosed` on EOF and
        :class:`socket.timeout` when ``timeout`` elapses first.
        """
        while not self._pending:
            self._sock.settimeout(timeout)
            try:
                data = self._sock.recv(_RECV_CHUNK)
            except socket.timeout:
                raise
            except OSError as exc:
                raise ConnectionClosed(f"recv failed: {exc}", clean=False) from exc
            if not data:
                if self._decoder.mid_frame:
                    raise ConnectionClosed(
                        "peer closed mid-frame (abrupt drop)", clean=False
                    )
                raise ConnectionClosed("peer closed the connection", clean=True)
            self.bytes_received += len(data)
            self._pending.extend(self._decoder.feed(data))
        kind, payload = self._pending.pop(0)
        return kind, pickle.loads(payload)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed


def connect(host: str, port: int,
            retry: Optional[RetryPolicy] = None,
            connect_timeout: float = 5.0,
            stop: Optional[threading.Event] = None) -> FramedConnection:
    """Dial ``host:port``; retries under ``retry``'s backoff schedule.

    A set ``stop`` event aborts the retry loop (shutdown must not wait
    out an unbounded backoff schedule).
    """
    retry = retry or RetryPolicy()
    attempt = 0
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
            sock.settimeout(None)
            return FramedConnection(sock)
        except OSError as exc:
            attempt += 1
            if retry.exhausted(attempt) or (stop is not None and stop.is_set()):
                raise DistError(
                    f"could not connect to {host}:{port} after "
                    f"{attempt} attempts: {exc}"
                ) from exc
            time.sleep(retry.backoff(attempt))
