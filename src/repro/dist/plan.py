"""Deterministic graph partition: which worker hosts which thread/buffer.

Launcher and workers each compute the plan independently from the same
spec, so nothing about the partition needs to travel on the wire beyond
each worker's node name. The rules are exactly the DES runtime's
placement resolution (:meth:`repro.runtime.Runtime._resolve_thread_node`
/ ``_resolve_buffer_node``): a thread goes where the placement map or
its graph attrs say, else to the first cluster node; a buffer goes where
placement/attrs say, else to its producer's node (the Stampede
convention — and the paper's config 2). Nodes that end up hosting
neither a thread nor a buffer get no worker process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class DistPlan:
    """One immutable partition of a task graph over cluster nodes."""

    #: thread name -> cluster node name
    thread_nodes: Mapping[str, str]
    #: buffer name -> cluster node name
    buffer_nodes: Mapping[str, str]
    #: nodes hosting at least one thread or buffer, in cluster order
    nodes: Tuple[str, ...]

    def threads_on(self, node: str) -> Tuple[str, ...]:
        return tuple(t for t, n in self.thread_nodes.items() if n == node)

    def buffers_on(self, node: str) -> Tuple[str, ...]:
        return tuple(b for b, n in self.buffer_nodes.items() if n == node)

    def remote_buffers(self, node: str) -> Tuple[str, ...]:
        """Buffers the node's threads touch that live on another node."""
        remote = []
        for buf, host in self.buffer_nodes.items():
            if host != node and buf not in remote:
                remote.append(buf)
        return tuple(remote)

    @property
    def cross_node_buffers(self) -> Tuple[str, ...]:
        """Buffers with at least one producer or consumer off-node."""
        return tuple(sorted(self._cross))

    # populated by build_plan (object.__setattr__ on the frozen instance)
    _cross: frozenset = frozenset()


def build_plan(graph, cluster, placement: Mapping[str, str]) -> DistPlan:
    """Partition ``graph`` over ``cluster`` exactly as the DES would."""
    node_names = [n.name for n in cluster.nodes]
    known = set(node_names)
    if not node_names:
        raise ConfigError("cluster has no nodes")
    placement = dict(placement)

    def resolve(name: str, fallback: str) -> str:
        target = placement.get(name) or graph.attrs(name).get("node") or fallback
        if target not in known:
            raise ConfigError(
                f"{name!r} placed on unknown node {target!r} "
                f"(cluster has {sorted(known)})"
            )
        return target

    thread_nodes = {
        t: resolve(t, node_names[0]) for t in graph.threads()
    }
    buffer_nodes = {}
    cross = set()
    for buf in graph.buffers():
        producers = graph.producers_of(buf)
        fallback = thread_nodes[producers[0]] if producers else node_names[0]
        host = resolve(buf, fallback)
        buffer_nodes[buf] = host
        for t in producers:
            if thread_nodes[t] != host:
                cross.add(buf)
        for t in graph.consumers_of(buf):
            if thread_nodes[t] != host:
                cross.add(buf)

    used = set(thread_nodes.values()) | set(buffer_nodes.values())
    nodes = tuple(n for n in node_names if n in used)
    plan = DistPlan(
        thread_nodes=thread_nodes,
        buffer_nodes=buffer_nodes,
        nodes=nodes,
    )
    object.__setattr__(plan, "_cross", frozenset(cross))
    return plan
