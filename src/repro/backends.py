"""The backend registry: named executors behind the experiment front door.

An experiment backend is *how* an :class:`~repro.experiment.ExperimentSpec`
turns into a :class:`~repro.experiment.RunResult` — the same declarative
spec can run on the deterministic discrete-event simulator, on real OS
threads inside one process, or on a fleet of worker processes wired
together over TCP (:mod:`repro.dist`). The registry mirrors the policy /
scale-policy / placement / arbiter registries: names resolve through one
path shared by ``ExperimentSpec(backend=...)``, spec files, sweep cells,
and the CLI ``--backend`` flag, and unknown names raise
:class:`~repro.errors.ConfigError` with did-you-mean suggestions —
a typo must never silently fall back to the simulator.

Built-ins:

``sim``
    The discrete-event simulation (default). Deterministic, fast,
    reproduces the paper's measurements. All features (faults,
    telemetry, elastic scaling, GC choices) are available.
``threads``
    Real OS threads in one process (:mod:`repro.rt_threads`). Wall-clock
    timing, GIL-bound compute; a live demo / smoke-test executor.
``proc``
    Real worker processes — one per cluster node — with channels that
    cross node boundaries carried over length-prefixed framed TCP
    connections, and the ARU control plane reused verbatim
    (:mod:`repro.dist`). The hardware-truth check on DES predictions.

Extensions register their own::

    from repro.backends import register_backend

    def run_on_my_cluster(spec):
        ...
        return RunResult(...)

    register_backend("k8s", run_on_my_cluster, help="my cluster")
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, NamedTuple

from repro.errors import ConfigError, unknown_name_error

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiment import ExperimentSpec, RunResult

#: A backend runner: the full spec in, the full result out.
BackendRunner = Callable[["ExperimentSpec"], "RunResult"]


class BackendEntry(NamedTuple):
    """One registered experiment backend."""

    runner: BackendRunner
    help: str


_REGISTRY: Dict[str, BackendEntry] = {}


def register_backend(name: str, runner: BackendRunner, help: str = "") -> None:
    """Register (or replace) a named experiment backend."""
    if not name:
        raise ConfigError("backend name must be non-empty")
    _REGISTRY[name] = BackendEntry(runner=runner, help=help)


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def resolve_backend(name: str) -> BackendRunner:
    """A backend name -> its runner callable.

    Raises :class:`ConfigError` with did-you-mean suggestions for
    unknown names.
    """
    if not isinstance(name, str):
        raise ConfigError(
            f"backend must be a registered name, got {name!r}"
        )
    entry = _REGISTRY.get(name)
    if entry is None:
        raise unknown_name_error("backend", name, _REGISTRY)
    return entry.runner


def backends_help_text() -> str:
    """One-line-per-backend catalog (the CLI's ``--list-backends``)."""
    width = max(len(name) for name in _REGISTRY)
    lines = ["registered backends:"]
    for name in available_backends():
        lines.append(f"  {name:<{width}}  {_REGISTRY[name].help}")
    return "\n".join(lines)


# -- built-in backends -------------------------------------------------------
# Runners import their implementations lazily so `import repro` stays
# cheap and the registry module never cycles with repro.experiment.


def _run_sim(spec: "ExperimentSpec") -> "RunResult":
    from repro.experiment import execute_simulated

    return execute_simulated(spec)


def _run_threads(spec: "ExperimentSpec") -> "RunResult":
    from repro.rt_threads.executor import run_threaded_experiment

    return run_threaded_experiment(spec)


def _run_proc(spec: "ExperimentSpec") -> "RunResult":
    from repro.dist.launcher import run_distributed

    return run_distributed(spec)


register_backend(
    "sim", _run_sim,
    help="discrete-event simulation — deterministic, all features "
         "(default)")
register_backend(
    "threads", _run_threads,
    help="real OS threads in one process — wall-clock live executor "
         "(GIL-bound)")
register_backend(
    "proc", _run_proc,
    help="worker processes per cluster node, channels over framed TCP "
         "— hardware-truth check")
