"""Ideal Garbage Collector — the postmortem lower bound (paper §4).

*"IGC gives a theoretical lower limit for the memory footprint by
performing a postmortem analysis of the execution trace of an application.
IGC simulates a GC that can eliminate all unnecessary computations (i.e.,
computations on frames that do not make it all the way through the
pipeline) and associated memory usage. Needless to say, IGC is not
realizable in practice since it requires future knowledge of dropped
frames."*

IGC is therefore **not** a live collector: it is an analysis over a
finished run's trace. The heavy lifting lives in
:class:`repro.metrics.postmortem.PostmortemAnalyzer`; this module provides
the paper-named entry point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.footprint import Timeline
from repro.metrics.postmortem import PostmortemAnalyzer
from repro.metrics.recorder import TraceRecorder


@dataclass(frozen=True)
class IgcResult:
    """IGC footprint statistics for one run."""

    mean_bytes: float
    std_bytes: float
    peak_bytes: float
    timeline: Timeline


def ideal_gc_analysis(recorder: TraceRecorder) -> IgcResult:
    """Run the IGC postmortem over a finalized trace."""
    analyzer = PostmortemAnalyzer(recorder)
    timeline = analyzer.ideal_footprint()
    return IgcResult(
        mean_bytes=timeline.mean(),
        std_bytes=timeline.std(),
        peak_bytes=timeline.peak(),
        timeline=timeline,
    )
