"""Garbage collectors for Stampede channel storage.

Live collectors: ``null``, ``ref``, ``tgc``, ``dgc`` (see
:mod:`repro.gc.base` for the taxonomy). The ideal bound (``igc``) is a
postmortem analysis, not a live collector — see :mod:`repro.gc.igc`.
"""

from typing import Union

from repro.errors import ConfigError
from repro.gc.base import GarbageCollector, NullGC
from repro.gc.dgc import DeadTimestampGC
from repro.gc.igc import IgcResult, ideal_gc_analysis
from repro.gc.refgc import RefCountGC
from repro.gc.tgc import TransparentGC

_NAMED = {
    "null": NullGC,
    "ref": RefCountGC,
    "tgc": TransparentGC,
    "dgc": DeadTimestampGC,
}


def make_gc(spec: Union[str, GarbageCollector, None]) -> GarbageCollector:
    """Build a collector from a config value.

    ``None`` defaults to DGC — the collector all paper experiments run on.
    """
    if spec is None:
        return DeadTimestampGC()
    if isinstance(spec, GarbageCollector):
        return spec
    if isinstance(spec, str):
        cls = _NAMED.get(spec.lower())
        if cls is None:
            raise ConfigError(f"unknown GC {spec!r}; expected one of {sorted(_NAMED)}")
        return cls()
    raise ConfigError(f"GC spec must be a name or instance, got {type(spec).__name__}")


__all__ = [
    "GarbageCollector",
    "NullGC",
    "RefCountGC",
    "TransparentGC",
    "DeadTimestampGC",
    "IgcResult",
    "ideal_gc_analysis",
    "make_gc",
]
