"""Dead-timestamp GC — the collector under every experiment in the paper.

Reimplemented from the description in the paper and in Harel, Mandviwala,
Knobe & Ramachandran, *"Dead timestamp identification in Stampede"* (ICPP
2002): each node propagates information about locally-dead timestamps to
its neighbours. For a channel, the per-consumer guarantee is the get
cursor: get-latest requests are strictly increasing, so consumer *c* will
never request any ``ts <= c.last_got``. An item is dead once **every**
consumer's cursor has passed it:

``dead(item)  <=>  item.ts <= min over consumers(last_got)``

This identifies both consumed-and-passed items and *skipped* items as
garbage — the latter being precisely what reachability GC can never
reclaim. Identification is O(dead items) per get, driven entirely by the
cursor updates piggybacked on normal channel traffic.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.errors import ConfigError
from repro.gc.base import GarbageCollector


class DeadTimestampGC(GarbageCollector):
    """Free items once every consumer's get cursor has passed them.

    Parameters
    ----------
    interval:
        Minimum simulated seconds between collection passes per channel
        (0 = collect eagerly on every put/get, the library default). The
        paper-era implementation ran identification as periodic runtime
        work, so its footprints carry collection lag; the GC-lag ablation
        sweeps this knob to show how lag inflates the mean footprint
        without changing any other behaviour.
    """

    name = "dgc"

    def __init__(self, interval: float = 0.0) -> None:
        if interval < 0:
            raise ConfigError(f"negative GC interval: {interval}")
        self.interval = float(interval)
        self._last_pass: Dict[str, float] = {}

    def dead_items(self, channel) -> Iterable[object]:
        if not channel.in_conns:
            # No consumer => no guarantee ever arrives; nothing is provably
            # dead. (A consumerless channel is pure waste by construction
            # and shows up as such in the resource metrics.)
            return ()
        threshold = min(conn.last_got for conn in channel.in_conns)
        if threshold < 0:
            return ()
        dead = channel.items_upto(threshold)
        if not dead:
            return ()
        if self.interval > 0.0:
            # Lazy mode: a *reclaiming* pass runs at most once per interval
            # per channel (identifying an empty dead set is cheap and free).
            now = channel.engine.now
            last = self._last_pass.get(channel.name)
            if last is not None and now - last < self.interval:
                return ()
            self._last_pass[channel.name] = now
        return dead
