"""Traditional reachability-based GC (the paper's §2 strawman).

*"Traditional GC algorithms consider a data item to be garbage only if it
is not 'reachable' by any thread in the application."* In a channel, an
item stays reachable until every registered consumer has consumed it —
so an item becomes garbage only once **all** consumers have gotten it.
Items that any consumer *skipped* are never collected: this is exactly the
leak that motivates timestamp-based GC and, ultimately, ARU.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.gc.base import GarbageCollector


class RefCountGC(GarbageCollector):
    """Free an item once every consumer connection has gotten it."""

    name = "ref"

    def __init__(self) -> None:
        # (channel name, item id) -> set of consumer conn_ids that got it
        self._gots: Dict[Tuple[str, int], Set[int]] = {}
        # per-channel list of items whose got-set just became complete
        self._ready: Dict[str, List[object]] = {}

    def on_get(self, channel, conn, item) -> None:
        key = (channel.name, item.item_id)
        gots = self._gots.setdefault(key, set())
        gots.add(conn.conn_id)
        required = {c.conn_id for c in channel.in_conns}
        if required and required <= gots:
            self._ready.setdefault(channel.name, []).append(item)
            del self._gots[key]

    def dead_items(self, channel) -> Iterable[object]:
        return self._ready.pop(channel.name, [])
