"""Transparent GC: application-wide virtual-time low-water mark.

The runtime derives each thread's *virtual time* (VT): for a source, the
timestamp it will produce next; for a consumer, one past the minimum of
its input-cursor positions. The global virtual time (GVT) is the minimum
over all threads; any item with ``ts < GVT`` can never be requested again
by anyone and is garbage [Nikhil & Ramachandran, PODC 2000].

TGC is *laggier* than DGC: one slow (or idle) thread anywhere in the
application holds back collection of every channel, even channels it
never reads. The GC ablation benchmark quantifies this.
"""

from __future__ import annotations

from typing import Iterable


from repro.gc.base import GarbageCollector


class TransparentGC(GarbageCollector):
    """Free items older than the global virtual-time minimum."""

    name = "tgc"

    def dead_items(self, channel) -> Iterable[object]:
        runtime = getattr(self, "runtime", None)
        if runtime is None:
            return ()
        gvt = runtime.global_virtual_time()
        if gvt is None:
            return ()
        # dead: ts < gvt  <=>  ts <= gvt - 1
        return channel.items_upto(gvt - 1)
