"""Garbage-collector interface for channel storage.

Four live policies ship with the library (plus the postmortem IGC bound in
:mod:`repro.gc.igc`):

==========  =================================================================
``null``    never frees — upper-bound baseline for micro-tests
``ref``     traditional reachability: free once *every* consumer has
            actually consumed the item; skipped items are retained forever
            (the failure mode motivating the paper's §2 comparison)
``tgc``     transparent GC: free items older than the application-wide
            virtual-time low-water mark (global minimum over thread VTs)
``dgc``     dead-timestamp GC [Harel et al. 2002]: per-connection cursor
            guarantees — an item is dead once every consumer's get cursor
            has passed its timestamp. The paper's experiments always run
            on top of DGC.
==========  =================================================================

Collectors are notified on puts/gets and asked for the currently-dead
items; the channel frees unreferenced dead items immediately and dooms the
rest (freed at release). A collector must never report an item some
consumer could still get — i.e. anything with ``ts > conn.last_got`` for
any consumer connection is off limits. The channel asserts this invariant
in tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.channel import Channel
    from repro.runtime.connection import InputConnection
    from repro.runtime.item import Item


class GarbageCollector:
    """Base collector: never frees anything (the ``null`` policy)."""

    name = "null"

    def bind(self, runtime) -> None:
        """Give the collector access to runtime-global state (TGC needs
        the thread virtual times). Called once during runtime setup."""
        self.runtime = runtime

    def on_put(self, channel: "Channel", item: "Item") -> None:
        """A new item landed in ``channel``."""

    def on_get(self, channel: "Channel", conn: "InputConnection", item: "Item") -> None:
        """``conn`` consumed ``item`` from ``channel``."""

    def dead_items(self, channel: "Channel") -> Iterable["Item"]:
        """Items of ``channel`` that are provably dead right now."""
        return ()


class NullGC(GarbageCollector):
    """Explicit alias of the base no-op collector."""

    name = "null"
