"""Clock abstraction shared by the two executors.

Runtime components (STP meters, trace recorders) read time through a
:class:`Clock` so the same code runs under simulated time (DES) and wall
time (real threads).
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.sim.engine import Engine


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now()`` returning seconds as float."""

    def now(self) -> float:  # pragma: no cover - protocol
        ...


class SimClock:
    """Reads the simulated time of a DES engine."""

    __slots__ = ("_engine",)

    def __init__(self, engine: Engine) -> None:
        self._engine = engine

    def now(self) -> float:
        return self._engine.now


class WallClock:
    """Monotonic wall-clock time, re-based to 0 at construction."""

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._t0


class EpochClock:
    """Wall-clock time measured from a shared epoch (UNIX seconds).

    Distributed workers cannot use :class:`WallClock` — each process
    would rebase to its own construction instant and the merged traces
    would sit on disjoint time axes. The launcher broadcasts one epoch
    ``t0`` in its START message; every worker rebases to it, so all
    workers' ``now()`` share base ~0. Uses ``time.time()`` (the only
    cross-process clock); NTP-grade skew applies and is documented in
    ``docs/distributed.md``.
    """

    __slots__ = ("_epoch",)

    def __init__(self, epoch: float = None) -> None:
        self._epoch = time.time() if epoch is None else float(epoch)

    def rebase(self, epoch: float) -> None:
        """Adopt the shared epoch (before any timestamps are recorded)."""
        self._epoch = float(epoch)

    def now(self) -> float:
        return time.time() - self._epoch


class ManualClock:
    """A hand-advanced clock, handy in unit tests of time-based logic."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("clocks do not go backwards")
        self._now += dt

    def set(self, t: float) -> None:
        if t < self._now:
            raise ValueError("clocks do not go backwards")
        self._now = float(t)
