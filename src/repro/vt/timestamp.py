"""Virtual-time timestamps.

Stampede associates every data item with an integer *timestamp*: an index
into the application's virtual time (e.g. the frame number emitted by a
digitizer). Timestamps order items within a channel, let consumers request
"the latest item newer than what I last saw", and let garbage collectors
reason about which items can never be requested again.

This module provides:

* :class:`Timestamp` — a total-ordered integer wrapper with provenance
  metadata kept deliberately tiny (slots, interning of small values).
* :data:`LATEST` / :data:`EARLIEST` — request sentinels for get operations.
* :class:`TsRange` — half-open timestamp intervals used by GC guarantees.
* :func:`corresponds` — the paper's "corresponding timestamps" predicate
  (equal, or within a threshold) used by multi-input stages such as stereo
  modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterator, Union


@total_ordering
class Timestamp:
    """An integer point in application virtual time.

    Timestamps are immutable, hashable, and interoperate with plain ``int``
    in comparisons and arithmetic, so application code may use either.
    """

    __slots__ = ("value",)

    def __init__(self, value: Union[int, "Timestamp"]) -> None:
        if isinstance(value, Timestamp):
            value = value.value
        if not isinstance(value, int):
            raise TypeError(f"timestamp value must be int, got {type(value).__name__}")
        if value < 0:
            raise ValueError(f"timestamps are non-negative, got {value}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("Timestamp is immutable")

    # -- ordering / equality (interops with int) -------------------------
    @staticmethod
    def _coerce(other) -> int:
        if isinstance(other, Timestamp):
            return other.value
        if isinstance(other, int):
            return other
        return NotImplemented  # type: ignore[return-value]

    def __eq__(self, other) -> bool:
        val = self._coerce(other)
        if val is NotImplemented:
            return NotImplemented
        return self.value == val

    def __lt__(self, other) -> bool:
        val = self._coerce(other)
        if val is NotImplemented:
            return NotImplemented
        return self.value < val

    def __hash__(self) -> int:
        return hash(self.value)

    # -- arithmetic -------------------------------------------------------
    def __add__(self, delta: int) -> "Timestamp":
        return Timestamp(self.value + int(delta))

    def __sub__(self, other: Union[int, "Timestamp"]) -> int:
        return self.value - self._coerce(other)

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def next(self) -> "Timestamp":
        """The immediately following virtual-time point."""
        return Timestamp(self.value + 1)

    def __repr__(self) -> str:
        return f"ts({self.value})"


class _Sentinel:
    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: Get-request sentinel: "the newest item strictly newer than my last get".
LATEST = _Sentinel("LATEST")
#: Get-request sentinel: "the oldest item still present".
EARLIEST = _Sentinel("EARLIEST")


@dataclass(frozen=True)
class TsRange:
    """A half-open interval ``[lo, hi)`` of virtual time.

    Used by GC algorithms to express guarantees of the form "this consumer
    will never request a timestamp in [0, t)".
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty-inverted range [{self.lo}, {self.hi})")

    def __contains__(self, ts: Union[int, Timestamp]) -> bool:
        val = int(ts)
        return self.lo <= val < self.hi

    def __len__(self) -> int:
        return self.hi - self.lo

    def __iter__(self) -> Iterator[Timestamp]:
        return (Timestamp(v) for v in range(self.lo, self.hi))

    def intersect(self, other: "TsRange") -> "TsRange":
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if lo > hi:
            return TsRange(lo, lo)  # empty at lo
        return TsRange(lo, hi)

    def union_hull(self, other: "TsRange") -> "TsRange":
        """Smallest range containing both (not a strict set union)."""
        return TsRange(min(self.lo, other.lo), max(self.hi, other.hi))

    @property
    def empty(self) -> bool:
        return self.lo >= self.hi


def corresponds(a: Union[int, Timestamp], b: Union[int, Timestamp],
                threshold: int = 0) -> bool:
    """The paper's "corresponding timestamps" predicate.

    Two timestamps correspond when equal, or when within ``threshold``
    virtual-time units of each other (footnote 1 of the paper: "timestamps
    with the same value or with values close enough within a pre-defined
    threshold").
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    return abs(int(a) - int(b)) <= threshold
