"""Virtual time: timestamps, ranges, and clock abstractions."""

from repro.vt.clock import Clock, EpochClock, ManualClock, SimClock, WallClock
from repro.vt.timestamp import EARLIEST, LATEST, Timestamp, TsRange, corresponds

__all__ = [
    "Timestamp",
    "TsRange",
    "LATEST",
    "EARLIEST",
    "corresponds",
    "Clock",
    "SimClock",
    "WallClock",
    "EpochClock",
    "ManualClock",
]
