"""Transport retry policy: capped exponential backoff for remote put/get.

When a remote transfer fails with :class:`~repro.errors.LinkDown` or
:class:`~repro.errors.MessageDropped`, the thread driver retries it after
a backoff delay — ``backoff_base * 2**(attempt-1)``, capped at
``backoff_max`` — so a pipeline rides out partition windows and lossy
links instead of dying. ``max_attempts=None`` (the default) retries until
the transfer succeeds: in a streaming system the sane reaction to a
partition of unknown length is to keep trying, and the ARU loop upstream
adapts through the stall. A finite ``max_attempts`` re-raises the last
transport error once exhausted, killing the thread — useful to study
cascading failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for failed remote transfers."""

    #: Delay before the first retry, in seconds.
    backoff_base: float = 0.05
    #: Upper bound on any single backoff delay, in seconds.
    backoff_max: float = 1.0
    #: Give up (re-raise) after this many failed attempts; None = never.
    max_attempts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.backoff_base < 0:
            raise ConfigError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_max < self.backoff_base:
            raise ConfigError(
                f"backoff_max ({self.backoff_max}) must be >= backoff_base "
                f"({self.backoff_base})"
            )
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1 or None, got {self.max_attempts}"
            )

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        return min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_max)

    def exhausted(self, attempt: int) -> bool:
        """Whether ``attempt`` failures exhaust the policy."""
        return self.max_attempts is not None and attempt >= self.max_attempts
