"""Application task graphs.

The paper's ARU algorithm assumption (§3.3.3): *"the application task
graph is made available to the runtime system"*. :class:`TaskGraph` is
that structure — a bipartite DAG of *threads* and *buffers* (channels or
queues), built through an API mirroring Stampede's
``spd_chan_alloc()``-style calls, including the paper's added optional
per-channel dependency operator parameter.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import networkx as nx

from repro.errors import GraphError

THREAD = "thread"
CHANNEL = "channel"
QUEUE = "queue"
_BUFFER_KINDS = (CHANNEL, QUEUE)


class TaskGraph:
    """A bipartite directed graph of threads and buffers.

    Nodes carry attributes:

    * threads: ``fn`` (task body factory), ``node`` (placement), ``sink``
      (end-of-pipeline flag for delivery accounting), ``params`` (free-form
      task configuration), ``compress_op`` (ARU operator override);
    * buffers: ``node`` placement, ``compress_op`` (the paper's optional
      dependency-operator argument to ``spd_chan_alloc``), ``capacity``
      (optional bound enabling back-pressure — an extension).
    """

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self._g = nx.DiGraph()
        #: stage name -> replication spec (see :meth:`add_replicated_stage`).
        self._replicated: Dict[str, Dict[str, Any]] = {}
        #: Whether any thread is explicitly marked ``sink`` (cached so
        #: :meth:`is_sink` stays O(degree) on merged multi-tenant graphs).
        self._has_marked_sink = False

    # -- construction ----------------------------------------------------
    def _check_new_name(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise GraphError(f"invalid node name: {name!r}")
        if name in self._g:
            raise GraphError(f"duplicate node name: {name!r}")

    def add_thread(
        self,
        name: str,
        fn: Optional[Callable] = None,
        *,
        node: Optional[str] = None,
        sink: bool = False,
        params: Optional[Dict[str, Any]] = None,
        compress_op: Optional[object] = None,
    ) -> "TaskGraph":
        """Declare a task thread. ``fn(ctx)`` must return a task generator."""
        self._check_new_name(name)
        self._g.add_node(
            name,
            kind=THREAD,
            fn=fn,
            node=node,
            sink=bool(sink),
            params=dict(params or {}),
            compress_op=compress_op,
        )
        if sink:
            self._has_marked_sink = True
        return self

    def add_channel(
        self,
        name: str,
        *,
        node: Optional[str] = None,
        compress_op: Optional[object] = None,
        capacity: Optional[int] = None,
    ) -> "TaskGraph":
        """Declare a Stampede channel (timestamped, skipping reads)."""
        return self._add_buffer(name, CHANNEL, node, compress_op, capacity)

    def add_queue(
        self,
        name: str,
        *,
        node: Optional[str] = None,
        compress_op: Optional[object] = None,
        capacity: Optional[int] = None,
    ) -> "TaskGraph":
        """Declare a Stampede queue (FIFO, destructive reads)."""
        return self._add_buffer(name, QUEUE, node, compress_op, capacity)

    def _add_buffer(self, name, kind, node, compress_op, capacity) -> "TaskGraph":
        self._check_new_name(name)
        if capacity is not None and capacity < 1:
            raise GraphError(f"buffer {name!r}: capacity must be >= 1")
        self._g.add_node(
            name, kind=kind, node=node, compress_op=compress_op, capacity=capacity
        )
        return self

    def connect(self, src: str, dst: str) -> "TaskGraph":
        """Add an edge. Must join a thread to a buffer or a buffer to a thread."""
        for endpoint in (src, dst):
            if endpoint not in self._g:
                raise GraphError(f"unknown node {endpoint!r}")
        kinds = (self.kind(src), self.kind(dst))
        if not (
            (kinds[0] == THREAD and kinds[1] in _BUFFER_KINDS)
            or (kinds[0] in _BUFFER_KINDS and kinds[1] == THREAD)
        ):
            raise GraphError(
                f"illegal edge {src!r}({kinds[0]}) -> {dst!r}({kinds[1]}): "
                "edges must alternate thread <-> buffer"
            )
        if self._g.has_edge(src, dst):
            raise GraphError(f"duplicate edge {src!r} -> {dst!r}")
        self._g.add_edge(src, dst)
        return self

    # -- replicated stages -------------------------------------------------
    def add_replicated_stage(
        self,
        stage: str,
        fn: Callable,
        *,
        input: str,
        output: str,
        replicas: int = 1,
        min_replicas: int = 1,
        max_replicas: Optional[int] = None,
        partition: str = "round-robin",
        node: Optional[str] = None,
        output_node: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        compress_op: Optional[object] = None,
        input_capacity: Optional[int] = None,
    ) -> "TaskGraph":
        """Declare a stage of N identical workers behind a partition/merge pair.

        Declares ``input`` as a partition queue (each admitted item is
        routed to exactly one worker slot) and ``output`` as a merge
        channel (results become visible in timestamp order), then adds
        ``replicas`` worker threads named ``stage[i]``, each connected
        ``input -> stage[i] -> output``. Upstream threads ``Put`` into
        ``input`` and downstream threads ``Get`` from ``output`` exactly
        as for plain buffers — replication is invisible to neighbours.

        ``fn(ctx)`` is the worker body shared by all replicas; the
        runtime can later add/retire replicas within
        ``[min_replicas, max_replicas]`` (see
        :meth:`~repro.runtime.runtime.Runtime.scale_out`).
        """
        from repro.runtime.replicated import PARTITION_KINDS

        if stage in self._replicated:
            raise GraphError(f"duplicate replicated stage {stage!r}")
        if replicas < 1:
            raise GraphError(f"stage {stage!r}: replicas must be >= 1")
        if min_replicas < 1:
            raise GraphError(f"stage {stage!r}: min_replicas must be >= 1")
        if max_replicas is None:
            max_replicas = max(replicas, 8)
        if not (min_replicas <= replicas <= max_replicas):
            raise GraphError(
                f"stage {stage!r}: need min_replicas <= replicas <= "
                f"max_replicas, got {min_replicas}/{replicas}/{max_replicas}"
            )
        if partition not in PARTITION_KINDS:
            raise GraphError(
                f"stage {stage!r}: unknown partition {partition!r} "
                f"(expected one of {PARTITION_KINDS})"
            )
        self.add_queue(input, node=node, compress_op=compress_op,
                       capacity=input_capacity)
        self._g.nodes[input]["partition_of"] = stage
        self._g.nodes[input]["partition"] = partition
        self.add_channel(output, node=output_node)
        self._g.nodes[output]["merge_of"] = stage
        self._replicated[stage] = {
            "fn": fn,
            "input": input,
            "output": output,
            "min_replicas": min_replicas,
            "max_replicas": max_replicas,
            "partition": partition,
            "node": node,
            "params": dict(params or {}),
            "compress_op": compress_op,
            "next_index": 0,
        }
        for _ in range(replicas):
            self.add_replica(stage)
        return self

    def stage_spec(self, stage: str) -> Dict[str, Any]:
        """The replication spec declared by :meth:`add_replicated_stage`."""
        try:
            return self._replicated[stage]
        except KeyError:
            raise GraphError(f"unknown replicated stage {stage!r}") from None

    def replicated_stages(self) -> List[str]:
        """Names of declared replicated stages, in declaration order."""
        return list(self._replicated)

    def replicas_of(self, stage: str) -> List[str]:
        """Current worker threads of ``stage``, ordered by replica index."""
        self.stage_spec(stage)
        members = [
            (d["replica_index"], n)
            for n, d in self._g.nodes(data=True)
            if d.get("replica_of") == stage
        ]
        return [n for _, n in sorted(members)]

    def add_replica(self, stage: str) -> str:
        """Add one worker thread to ``stage``; returns its name.

        Indices are never reused — each spawn gets a fresh ``stage[i]``
        name, so trace records of retired replicas stay unambiguous.
        """
        spec = self.stage_spec(stage)
        idx = spec["next_index"]
        spec["next_index"] = idx + 1
        name = f"{stage}[{idx}]"
        self.add_thread(
            name,
            spec["fn"],
            node=spec["node"],
            params=dict(spec["params"]),
            compress_op=spec["compress_op"],
        )
        self._g.nodes[name]["replica_of"] = stage
        self._g.nodes[name]["replica_index"] = idx
        self.connect(spec["input"], name)
        self.connect(name, spec["output"])
        return name

    def remove_replica(self, stage: str, name: str) -> None:
        """Remove a retired worker thread (and its edges) from the graph."""
        self.stage_spec(stage)
        if name not in self._g or self._g.nodes[name].get("replica_of") != stage:
            raise GraphError(f"{name!r} is not a replica of stage {stage!r}")
        if len(self.replicas_of(stage)) <= 1:
            raise GraphError(
                f"stage {stage!r}: cannot remove the last replica {name!r}"
            )
        self._g.remove_node(name)

    # -- composition --------------------------------------------------------
    def merge(self, other: "TaskGraph", prefix: str = "") -> Dict[str, str]:
        """Copy another graph's nodes and edges into this one, renamed.

        Every node of ``other`` is added as ``prefix + name`` (threads,
        buffers, replicated-stage bookkeeping and edges alike); cluster
        placement hints (``node=``) are *not* renamed — they refer to
        hardware, not graph nodes. Returns the ``old name -> new name``
        mapping. This is the multi-tenancy primitive: each tenant's app
        graph merges into one shared graph under its namespace, so all
        tenants coexist in a single engine run.

        Raises :class:`GraphError` on any name collision, leaving
        ``self`` untouched.
        """
        if other is self:
            raise GraphError("cannot merge a graph into itself")
        mapping = {n: f"{prefix}{n}" for n in other._g.nodes}
        for new in mapping.values():
            if new in self._g:
                raise GraphError(
                    f"merge collision: {new!r} already exists in "
                    f"{self.name!r}"
                )
        for stage in other._replicated:
            if f"{prefix}{stage}" in self._replicated:
                raise GraphError(
                    f"merge collision: replicated stage "
                    f"{prefix}{stage!r} already exists in {self.name!r}"
                )
        for old, new in mapping.items():
            data = dict(other._g.nodes[old])
            for key in ("partition_of", "merge_of", "replica_of"):
                if data.get(key) is not None:
                    data[key] = f"{prefix}{data[key]}"
            self._g.add_node(new, **data)
            if data.get("sink"):
                self._has_marked_sink = True
        for u, v in other._g.edges:
            self._g.add_edge(mapping[u], mapping[v])
        for stage, spec in other._replicated.items():
            spec = dict(spec)
            spec["params"] = dict(spec["params"])
            spec["input"] = f"{prefix}{spec['input']}"
            spec["output"] = f"{prefix}{spec['output']}"
            self._replicated[f"{prefix}{stage}"] = spec
        return mapping

    # -- inspection ---------------------------------------------------------
    def kind(self, name: str) -> str:
        try:
            return self._g.nodes[name]["kind"]
        except KeyError:
            raise GraphError(f"unknown node {name!r}") from None

    def attrs(self, name: str) -> Dict[str, Any]:
        if name not in self._g:
            raise GraphError(f"unknown node {name!r}")
        return self._g.nodes[name]

    def threads(self) -> List[str]:
        return [n for n, d in self._g.nodes(data=True) if d["kind"] == THREAD]

    def buffers(self) -> List[str]:
        return [n for n, d in self._g.nodes(data=True) if d["kind"] in _BUFFER_KINDS]

    def channels(self) -> List[str]:
        return [n for n, d in self._g.nodes(data=True) if d["kind"] == CHANNEL]

    def queues(self) -> List[str]:
        return [n for n, d in self._g.nodes(data=True) if d["kind"] == QUEUE]

    def producers_of(self, buffer: str) -> List[str]:
        """Threads putting into ``buffer``."""
        return list(self._g.predecessors(buffer))

    def consumers_of(self, buffer: str) -> List[str]:
        """Threads getting from ``buffer``."""
        return list(self._g.successors(buffer))

    def inputs_of(self, thread: str) -> List[str]:
        """Buffers ``thread`` consumes from."""
        return list(self._g.predecessors(thread))

    def outputs_of(self, thread: str) -> List[str]:
        """Buffers ``thread`` produces into."""
        return list(self._g.successors(thread))

    def sources(self) -> List[str]:
        """Threads with no input buffers — the paper's throttle targets."""
        return [t for t in self.threads() if not self.inputs_of(t)]

    def sinks(self) -> List[str]:
        """Threads explicitly marked ``sink``, else threads with no outputs."""
        marked = [t for t in self.threads() if self._g.nodes[t].get("sink")]
        if marked:
            return marked
        return [t for t in self.threads() if not self.outputs_of(t)]

    def is_source(self, thread: str) -> bool:
        if self.kind(thread) != THREAD:
            return False
        return not self.inputs_of(thread)

    def is_sink(self, thread: str) -> bool:
        if self.kind(thread) != THREAD:
            return False
        if self._has_marked_sink:
            return bool(self._g.nodes[thread].get("sink"))
        return not self.outputs_of(thread)

    @property
    def nx_graph(self) -> nx.DiGraph:
        """The underlying networkx graph (read-only by convention)."""
        return self._g

    # -- validation -------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`GraphError` on structural problems.

        Rules: at least one thread; acyclic (streaming pipelines); every
        buffer has at least one producer; every thread declares a body.
        A buffer with no consumer is legal (its items are pure waste) but
        unusual, so it is allowed — the resource metrics will expose it.
        """
        if not self.threads():
            raise GraphError(f"graph {self.name!r} has no threads")
        for buffer in self.buffers():
            if not self.producers_of(buffer):
                raise GraphError(f"buffer {buffer!r} has no producer")
        for thread in self.threads():
            if self._g.nodes[thread]["fn"] is None:
                raise GraphError(f"thread {thread!r} has no body (fn=None)")
        try:
            cycle = nx.find_cycle(self._g)
        except nx.NetworkXNoCycle:
            cycle = None
        if cycle:
            raise GraphError(f"graph {self.name!r} has a cycle: {cycle}")
        if not self.sources():
            raise GraphError(f"graph {self.name!r} has no source thread")

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<TaskGraph {self.name!r}: {len(self.threads())} threads, "
            f"{len(self.buffers())} buffers, {self._g.number_of_edges()} edges>"
        )
