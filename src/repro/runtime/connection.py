"""Connections: the edges of the task graph.

A connection joins a thread to a buffer (channel or queue) in one
direction. Connections carry the per-edge runtime state the paper's
mechanisms need:

* consumer connections hold the get-latest cursor (``last_got``) that both
  the skipping semantics and the dead-timestamp GC rely on;
* both kinds are the slots of the ARU ``backwardSTP`` vectors;
* consumer connections additionally carry their preresolved telemetry
  handles (``get_h``/``skip_h``), wired once at registration so the
  per-operation telemetry cost is a flat-array add (ISSUE 7).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.obs.metrics import NOOP_HANDLE

_next_conn_id = itertools.count(1)


def reset_conn_ids() -> None:
    """Restart the global connection-id counter (test isolation only)."""
    global _next_conn_id
    _next_conn_id = itertools.count(1)


@dataclass
class OutputConnection:
    """thread -> buffer (producer side)."""

    thread: str
    buffer: str
    conn_id: int = field(default_factory=lambda: next(_next_conn_id))
    #: Items put through this connection.
    puts: int = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Out#{self.conn_id} {self.thread}->{self.buffer}>"


@dataclass
class InputConnection:
    """buffer -> thread (consumer side)."""

    buffer: str
    thread: str
    conn_id: int = field(default_factory=lambda: next(_next_conn_id))
    #: Highest timestamp this consumer has gotten (-1 before the first get).
    #: get-latest returns only items with ``ts > last_got``, which is what
    #: makes every timestamp at or below it provably dead for this consumer.
    last_got: int = -1
    #: Items gotten / skipped through this connection.
    gets: int = 0
    skips: int = 0
    #: Fixed-slot telemetry handles, resolved once by the buffer's
    #: ``register_consumer`` (no-ops when telemetry/metrics are off).
    get_h: object = NOOP_HANDLE
    skip_h: object = NOOP_HANDLE

    def __repr__(self) -> str:  # pragma: no cover
        return f"<In#{self.conn_id} {self.buffer}->{self.thread} last_got={self.last_got}>"
