"""Graphviz DOT export of task graphs.

Pure text generation (no graphviz dependency): render with
``dot -Tpng app.dot -o app.png`` wherever graphviz exists. Threads render
as boxes (sources double-bordered, sinks filled), channels as ellipses,
queues as hexagons; per-node ARU operators and capacities annotate the
labels.
"""

from __future__ import annotations

from repro.runtime.graph import CHANNEL, TaskGraph


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def graph_to_dot(graph: TaskGraph, rankdir: str = "LR") -> str:
    """The DOT document for ``graph``."""
    lines = [
        f'digraph "{_escape(graph.name)}" {{',
        f"  rankdir={rankdir};",
        '  node [fontname="Helvetica", fontsize=11];',
    ]
    for thread in graph.threads():
        attrs = graph.attrs(thread)
        shape = "box"
        style = []
        if graph.is_sink(thread):
            style.append("filled")
        peripheries = 2 if graph.is_source(thread) else 1
        label = thread
        if attrs.get("compress_op"):
            label += f"\\nop={attrs['compress_op']}"
        style_attr = f', style="{",".join(style)}", fillcolor="lightgrey"' \
            if style else ""
        lines.append(
            f'  "{_escape(thread)}" [shape={shape}, peripheries={peripheries}, '
            f'label="{_escape(label)}"{style_attr}];'
        )
    for buffer in graph.buffers():
        attrs = graph.attrs(buffer)
        kind = graph.kind(buffer)
        shape = "ellipse" if kind == CHANNEL else "hexagon"
        label = buffer
        if attrs.get("compress_op"):
            label += f"\\nop={attrs['compress_op']}"
        if attrs.get("capacity"):
            label += f"\\ncap={attrs['capacity']}"
        lines.append(
            f'  "{_escape(buffer)}" [shape={shape}, label="{_escape(label)}"];'
        )
    for src, dst in graph.nx_graph.edges():
        lines.append(f'  "{_escape(src)}" -> "{_escape(dst)}";')
    lines.append("}")
    return "\n".join(lines) + "\n"
