"""Timestamped data items.

An :class:`Item` is the unit of storage in channels and queues: a payload
tagged with a virtual timestamp, a byte size (driving memory accounting),
and lineage (the ids of the items consumed by the iteration that produced
it — the raw material for wasted-resource postmortem analysis).

Reference counting: a consumer's get takes a reference which the runtime
releases at the consumer's next ``periodicity_sync()``. Garbage collectors
may declare an item *doomed* while referenced; it is then freed at the
final release.
"""

from __future__ import annotations

import itertools
from typing import Any, Tuple

from repro.errors import SimulationError

_next_item_id = itertools.count(1)


def reset_item_ids() -> None:
    """Restart the global item-id counter (test isolation only)."""
    global _next_item_id
    _next_item_id = itertools.count(1)


def seed_item_ids(start: int) -> None:
    """Start the global item-id counter at ``start``.

    Distributed worker processes each seed a disjoint id range so the
    merged trace never sees two items with the same id.
    """
    global _next_item_id
    _next_item_id = itertools.count(int(start))


class Item:
    """One timestamped item living in a channel or queue."""

    __slots__ = (
        "item_id",
        "ts",
        "size",
        "payload",
        "producer",
        "parents",
        "created_at",
        "refcount",
        "doomed",
        "freed",
    )

    def __init__(
        self,
        ts: int,
        size: int,
        payload: Any = None,
        producer: str = "",
        parents: Tuple[int, ...] = (),
        created_at: float = 0.0,
    ) -> None:
        if size < 0:
            raise SimulationError(f"negative item size: {size}")
        if int(ts) < 0:
            raise SimulationError(f"negative timestamp: {ts}")
        self.item_id: int = next(_next_item_id)
        self.ts = int(ts)
        self.size = int(size)
        self.payload = payload
        self.producer = producer
        self.parents = tuple(parents)
        self.created_at = float(created_at)
        self.refcount = 0
        #: Set by a GC that has proven the item dead while still referenced.
        self.doomed = False
        #: Set once the storage has been released.
        self.freed = False

    def acquire(self) -> None:
        if self.freed:
            raise SimulationError(f"acquire() on freed item {self.item_id}")
        self.refcount += 1

    def release(self) -> None:
        if self.refcount <= 0:
            raise SimulationError(f"release() without reference on item {self.item_id}")
        self.refcount -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag for flag, on in (("D", self.doomed), ("F", self.freed)) if on
        )
        return f"<Item #{self.item_id} ts={self.ts} {self.size}B ref={self.refcount}{flags}>"


class ItemView:
    """What a consumer's get returns: an immutable window onto an item.

    Exposes the payload and metadata without handing out mutable runtime
    state (refcounts, doom flags).
    """

    __slots__ = ("item_id", "ts", "payload", "size", "channel", "_item")

    def __init__(self, item: Item, channel: str) -> None:
        self.item_id = item.item_id
        self.ts = item.ts
        self.payload = item.payload
        self.size = item.size
        self.channel = channel
        self._item = item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ItemView #{self.item_id} ts={self.ts} from {self.channel!r}>"
