"""Task syscalls: the instruction set of task bodies.

A task body is a generator that ``yield``\\ s these objects; the executor
(DES driver or real-threads driver) interprets them. Keeping the task
language executor-agnostic is what lets one task definition run both under
simulated time and on real threads.

The ``yield`` expression evaluates to the syscall's result:

=====================  =====================================================
syscall                yields back
=====================  =====================================================
``Get(chan)``          :class:`~repro.runtime.item.ItemView` (blocks)
``TryGet(chan)``       ``ItemView`` or ``None`` (never blocks)
``Put(chan, ...)``     the new item's id
``Compute(seconds)``   actual busy seconds (after noise/contention)
``Sleep(seconds)``     ``None`` — app-paced delay, *included* in the STP
``PeriodicitySync()``  the iteration's current-STP (throttles sources)
``Now()``              current time (float seconds)
=====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from repro.vt.timestamp import LATEST, Timestamp, _Sentinel


@dataclass(frozen=True)
class Get:
    """Blocking get from a channel/queue.

    ``request`` is :data:`~repro.vt.LATEST` (default — skip to the newest
    unseen item, the paper's interactive semantics),
    :data:`~repro.vt.EARLIEST` (oldest unseen), or an exact integer
    timestamp.

    ``timeout`` (seconds) bounds the wait: the get yields ``None`` if no
    matching item arrives in time — Stampede's timed-get variant, useful
    for stages that must stay responsive (a GUI redrawing even when a
    detector stalls).

    ``hold=True`` keeps the reference across iterations: the item is NOT
    auto-released at the next ``periodicity_sync()``; the task must
    release it explicitly with :class:`Release`. This is what §1's
    sliding-window consumers ("a gesture recognition module may need to
    analyze a sliding window over a video stream") use to pin a window
    of items while the rest of the pipeline skips ahead.
    """

    channel: str
    request: Union[_Sentinel, int, Timestamp] = LATEST
    timeout: Union[float, None] = None
    hold: bool = False


@dataclass(frozen=True)
class TryGet:
    """Non-blocking get: returns ``None`` when nothing matches."""

    channel: str
    request: Union[_Sentinel, int, Timestamp] = LATEST


@dataclass(frozen=True)
class Put:
    """Put a timestamped item.

    ``size`` drives memory accounting (bytes). The runtime records the
    items consumed since the last ``PeriodicitySync`` as the new item's
    lineage parents.
    """

    channel: str
    ts: Union[int, Timestamp]
    size: int
    payload: Any = None


@dataclass(frozen=True)
class Compute:
    """Model ``seconds`` of CPU work on the thread's node.

    Subject to OS-scheduling noise and SMP contention; occupies one CPU
    from the node's pool.
    """

    seconds: float


@dataclass(frozen=True)
class Sleep:
    """Application-paced delay (e.g. a camera's frame interval).

    Unlike blocking and throttle sleep, this time **counts toward the
    STP** — it is part of the thread's intrinsic production period.
    """

    seconds: float


@dataclass(frozen=True)
class PeriodicitySync:
    """End-of-iteration marker — the paper's ``periodicity_sync()`` API.

    Computes the thread's current-STP, records the iteration trace,
    releases the references taken by this iteration's gets, and — for
    source threads under ARU — sleeps to stretch the iteration to the
    propagated summary-STP target.
    """


@dataclass(frozen=True)
class Now:
    """Read the current time (simulated or wall, depending on executor)."""


@dataclass(frozen=True)
class Release:
    """Explicitly release an item obtained with ``Get(..., hold=True)``.

    ``view`` is the :class:`~repro.runtime.item.ItemView` the get yielded.
    Releasing twice, or releasing a view that was not held, is an error.
    """

    view: object


@dataclass(frozen=True)
class CheckDead:
    """Ask whether an item with timestamp ``ts`` put into ``channel`` now
    would be dead on arrival (every consumer's get cursor has passed it).

    This is the *upstream computation elimination* primitive of the dead-
    timestamp GC lineage [Harel et al., ICPP 2002] that the paper's §3.2
    discusses: a producer can skip computing an output that downstream
    could never consume. The paper notes such techniques "have shown
    limited success" because upstream threads run ahead of their
    consumers' cursors — the ablation bench quantifies exactly that.

    Yields back ``True`` when the would-be item is provably dead.
    """

    channel: str
    ts: Union[int, Timestamp]


Syscall = Union[
    Get, TryGet, Put, Compute, Sleep, PeriodicitySync, Now, CheckDead, Release
]
