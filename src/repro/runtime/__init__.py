"""The Stampede-style streaming runtime.

Key pieces:

* :class:`~repro.runtime.graph.TaskGraph` — declare threads, channels,
  queues, and connections;
* syscalls (:class:`Get`, :class:`Put`, :class:`Compute`, :class:`Sleep`,
  :class:`PeriodicitySync`, ...) — the language of task bodies;
* :class:`~repro.runtime.runtime.Runtime` + :class:`RuntimeConfig` — wire a
  graph onto a simulated cluster and run it.
"""

from repro.runtime.channel import Channel
from repro.runtime.connection import InputConnection, OutputConnection
from repro.runtime.dot import graph_to_dot
from repro.runtime.graph import CHANNEL, QUEUE, THREAD, TaskGraph
from repro.runtime.item import Item, ItemView, reset_item_ids
from repro.runtime.replicated import (
    HashPartitioner,
    MergeChannel,
    PartitionQueue,
    RoundRobinPartitioner,
    make_partitioner,
)
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.squeue import SQueue
from repro.runtime.syscalls import (
    CheckDead,
    Compute,
    Get,
    Now,
    PeriodicitySync,
    Put,
    Release,
    Sleep,
    Syscall,
    TryGet,
)
from repro.runtime.thread import TaskContext, ThreadDriver

__all__ = [
    "TaskGraph",
    "graph_to_dot",
    "THREAD",
    "CHANNEL",
    "QUEUE",
    "Runtime",
    "RuntimeConfig",
    "Channel",
    "SQueue",
    "PartitionQueue",
    "MergeChannel",
    "RoundRobinPartitioner",
    "HashPartitioner",
    "make_partitioner",
    "Item",
    "ItemView",
    "reset_item_ids",
    "InputConnection",
    "OutputConnection",
    "Get",
    "TryGet",
    "Put",
    "CheckDead",
    "Release",
    "Compute",
    "Sleep",
    "PeriodicitySync",
    "Now",
    "Syscall",
    "TaskContext",
    "ThreadDriver",
]
