"""Stampede channels: timestamped, skipping, multi-consumer buffers.

Semantics (paper §1):

* a put stores an item under its timestamp; storage is unbounded unless a
  ``capacity`` is configured (back-pressure extension);
* a get with :data:`~repro.vt.LATEST` returns the **newest** item whose
  timestamp exceeds the consumer's cursor, *skipping over* anything older
  — "a task may have to drop or skip-over stale data to access the most
  recent data from its input buffers";
* skipped items remain in memory until a garbage collector proves them
  dead — exactly the waste ARU exists to prevent;
* every get/put piggybacks feedback values through the channel's
  :class:`~repro.control.propagation.FeedbackEndpoint` (§3.3.2) — the
  channel transports them without knowing what they mean.

The channel is executor-agnostic state plus event-based blocking: drivers
call ``request_get``/``wait_for_room`` to obtain events and
``commit_get``/``commit_put`` to apply side effects once unblocked.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import TYPE_CHECKING, List, Optional, Union

from repro.aru.summary import BufferAruState
from repro.control.propagation import FeedbackEndpoint
from repro.errors import ItemDropped, SimulationError
from repro.obs.hub import NULL_HUB
from repro.runtime.connection import InputConnection, OutputConnection
from repro.runtime.item import Item, ItemView
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import WaitQueue
from repro.vt.timestamp import EARLIEST, LATEST, Timestamp, _Sentinel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node
    from repro.gc.base import GarbageCollector
    from repro.metrics.recorder import TraceRecorder

Request = Union[_Sentinel, int, Timestamp]


class Channel:
    """One named channel placed on a cluster node."""

    kind = "channel"

    def __init__(
        self,
        engine: Engine,
        name: str,
        node: "Node",
        recorder: "TraceRecorder",
        gc: "GarbageCollector",
        aru_state: Optional[BufferAruState] = None,
        capacity: Optional[int] = None,
        feedback: Optional[FeedbackEndpoint] = None,
        obs=NULL_HUB,
    ) -> None:
        self.engine = engine
        self.name = name
        self.node = node
        self.recorder = recorder
        self.gc = gc
        self.obs = obs
        # Fixed-slot telemetry handles, resolved once here instead of a
        # (name, labels) registry lookup per operation (ISSUE 7). With
        # telemetry or metrics off these are shared no-ops.
        self._put_h = obs.put_handle(name, self.kind)
        self._free_h = obs.free_handle(name, self.kind, gc.name)
        # ``aru_state`` is the pre-control-plane spelling: wrap it into
        # an endpoint so hand-built harnesses keep working.
        if feedback is None and aru_state is not None:
            feedback = FeedbackEndpoint(aru_state)
        self.feedback = feedback
        self.capacity = capacity
        self._items: dict[int, Item] = {}
        self._order: List[int] = []  # sorted timestamps present
        self.in_conns: List[InputConnection] = []
        self.out_conns: List[OutputConnection] = []
        self._getters = WaitQueue(engine, name=f"{name}.get")
        self._putters = WaitQueue(engine, name=f"{name}.room")
        # statistics
        self.total_puts = 0
        self.total_gets = 0
        self.total_skips = 0
        self.total_frees = 0

    # -- registration ------------------------------------------------------
    def register_producer(self, thread: str) -> OutputConnection:
        conn = OutputConnection(thread=thread, buffer=self.name)
        self.out_conns.append(conn)
        return conn

    def register_consumer(self, thread: str) -> InputConnection:
        conn = InputConnection(buffer=self.name, thread=thread)
        obs = self.obs
        if obs.enabled:
            conn.get_h = obs.get_handle(self.name, self.kind, thread)
            conn.skip_h = obs.skip_handle(self.name, thread)
        self.in_conns.append(conn)
        return conn

    def unregister_producer(self, conn: OutputConnection) -> None:
        """Detach a producer connection (thread restart/teardown)."""
        try:
            self.out_conns.remove(conn)
        except ValueError:
            raise SimulationError(
                f"producer {conn.thread!r} not registered on {self.name!r}"
            ) from None

    def unregister_consumer(self, conn: InputConnection) -> None:
        """Detach a consumer connection (thread restart/teardown).

        Evicts the connection's backwardSTP slot immediately — a removed
        consumer must stop influencing throttling right away — and drops
        its cursor from the DGC threshold, unfreezing garbage collection
        for items only the dead consumer was behind on.
        """
        try:
            self.in_conns.remove(conn)
        except ValueError:
            raise SimulationError(
                f"consumer {conn.thread!r} not registered on {self.name!r}"
            ) from None
        if self.feedback is not None:
            self.feedback.detach(conn.conn_id)

    # -- introspection ------------------------------------------------------
    @property
    def aru(self) -> Optional[BufferAruState]:
        """The buffer's ARU state, when feedback propagation is wired."""
        return self.feedback.state if self.feedback is not None else None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def bytes_held(self) -> int:
        return sum(item.size for item in self._items.values())

    def newest_ts(self) -> Optional[int]:
        return self._order[-1] if self._order else None

    def oldest_ts(self) -> Optional[int]:
        return self._order[0] if self._order else None

    def has_item(self, ts: int) -> bool:
        return int(ts) in self._items

    def items_snapshot(self) -> List[Item]:
        """Items currently stored, oldest first (GC and tests)."""
        return [self._items[ts] for ts in self._order]

    def items_upto(self, ts_inclusive: int) -> List[Item]:
        """Stored items with ``ts <= ts_inclusive``, oldest first (GC use)."""
        idx = bisect_right(self._order, ts_inclusive)
        return [self._items[ts] for ts in self._order[:idx]]

    # -- put side ----------------------------------------------------------
    def has_room(self) -> bool:
        return self.capacity is None or len(self._items) < self.capacity

    def wait_for_room(self) -> Event:
        """Event firing when the capacity bound admits another item."""
        return self._putters.wait(lambda: self.has_room() or None)

    def commit_put(self, conn: OutputConnection, item: Item, t: float) -> Optional[float]:
        """Insert ``item``; returns the channel's summary-STP (ARU feedback).

        The caller must have established room (``has_room``). Duplicate
        timestamps are rejected — Stampede channel items are keyed by
        timestamp.
        """
        if not self.has_room():
            raise SimulationError(f"commit_put on full channel {self.name!r}")
        if item.ts in self._items:
            raise SimulationError(
                f"channel {self.name!r}: duplicate timestamp {item.ts}"
            )
        self._items[item.ts] = item
        insort(self._order, item.ts)
        self.total_puts += 1
        conn.puts += 1
        self.node.alloc(item.size)
        self.recorder.on_alloc(
            item_id=item.item_id,
            channel=self.name,
            node=self.node.name,
            ts=item.ts,
            size=item.size,
            producer=item.producer,
            parents=item.parents,
            t=t,
        )
        obs = self.obs
        if obs.enabled:
            self._put_h.add(1.0, item.size)
            if obs.spans_on:
                obs.span_put(self.name, item, t)
        # Dead on arrival for consumers whose cursor already passed this ts.
        for in_conn in self.in_conns:
            if in_conn.last_got >= item.ts:
                in_conn.skips += 1
                self.total_skips += 1
                self.recorder.on_skip(item.item_id, in_conn.conn_id, in_conn.thread, t)
                in_conn.skip_h.inc()
        self.gc.on_put(self, item)
        self.maybe_collect(t)
        self._getters.notify_all()
        return self.feedback.advertise() if self.feedback is not None else None

    # -- get side ----------------------------------------------------------
    def _match(self, conn: InputConnection, request: Request) -> Optional[Item]:
        """The item a get would return right now, or None."""
        if not self._order:
            return None
        if request is LATEST:
            ts = self._order[-1]
            return self._items[ts] if ts > conn.last_got else None
        if request is EARLIEST:
            idx = bisect_right(self._order, conn.last_got)
            if idx >= len(self._order):
                return None
            return self._items[self._order[idx]]
        ts = int(request)
        if ts <= conn.last_got:
            raise ItemDropped(
                f"{conn.thread!r} re-requested ts {ts} <= cursor {conn.last_got} "
                f"on channel {self.name!r}"
            )
        return self._items.get(ts)

    def request_get(self, conn: InputConnection, request: Request = LATEST) -> Event:
        """Event firing when a matching item is available."""
        if conn not in self.in_conns:
            raise SimulationError(f"unregistered consumer on {self.name!r}")
        return self._getters.wait(lambda: self._match(conn, request) is not None or None)

    def try_match(self, conn: InputConnection, request: Request = LATEST) -> bool:
        """Non-blocking availability test."""
        return self._match(conn, request) is not None

    def cancel_get(self, event: Event) -> None:
        """Withdraw a pending get request (timed-get expiry)."""
        self._getters.cancel(event)

    def commit_get(
        self,
        conn: InputConnection,
        request: Request,
        t: float,
        consumer_summary: Optional[float] = None,
    ) -> ItemView:
        """Apply get side effects; returns the consumer's view of the item.

        Marks every stored item between the old cursor and the returned
        timestamp as skipped for this connection, advances the cursor,
        takes a reference, feeds the consumer's summary-STP into the
        channel's backwardSTP vector, and lets the GC run.
        """
        item = self._match(conn, request)
        if item is None:
            raise SimulationError(
                f"commit_get with no matching item on {self.name!r} "
                f"(cursor={conn.last_got}, request={request!r})"
            )
        # Skip-marking: present items the cursor jumps over.
        obs = self.obs
        lo = bisect_right(self._order, conn.last_got)
        hi = bisect_left(self._order, item.ts)
        for ts in self._order[lo:hi]:
            skipped = self._items[ts]
            conn.skips += 1
            self.total_skips += 1
            self.recorder.on_skip(skipped.item_id, conn.conn_id, conn.thread, t)
            conn.skip_h.inc()
        conn.last_got = item.ts
        conn.gets += 1
        self.total_gets += 1
        item.acquire()
        self.recorder.on_get(item.item_id, conn.conn_id, conn.thread, t)
        if obs.enabled:
            conn.get_h.inc()
            if obs.spans_on:
                obs.span_get(item, conn.thread, t)
        if self.feedback is not None and consumer_summary is not None:
            self.feedback.receive(conn.conn_id, consumer_summary)
        self.gc.on_get(self, conn, item)
        self.maybe_collect(t)
        return ItemView(item, self.name)

    def release(self, item: Item, t: float) -> None:
        """Consumer finished with ``item`` (end of iteration)."""
        item.release()
        if item.doomed and item.refcount == 0:
            self._free(item, t)

    # -- garbage collection --------------------------------------------------
    def maybe_collect(self, t: float) -> int:
        """Ask the GC for dead items; free the unreferenced ones.

        Referenced dead items are marked doomed and freed at release.
        Returns the number of items freed now.
        """
        freed = 0
        for item in self.gc.dead_items(self):
            if item.freed:
                continue
            if item.refcount == 0:
                self._free(item, t)
                freed += 1
            else:
                item.doomed = True
        return freed

    def drain(self, t: float) -> int:
        """Reclaim all storage (tenant departure / teardown).

        Frees every unreferenced item immediately and dooms the rest so
        they free when their last consumer releases them. Returns the
        number of items freed now.
        """
        freed = 0
        for item in self.items_snapshot():
            if item.freed:
                continue
            if item.refcount == 0:
                self._free(item, t)
                freed += 1
            else:
                item.doomed = True
        return freed

    def _free(self, item: Item, t: float) -> None:
        if item.freed:  # pragma: no cover - defensive
            raise SimulationError(f"double free of {item!r} in {self.name!r}")
        stored = self._items.pop(item.ts, None)
        if stored is not item:
            raise SimulationError(
                f"channel {self.name!r}: freeing item not stored under ts {item.ts}"
            )
        idx = bisect_left(self._order, item.ts)
        del self._order[idx]
        item.freed = True
        self.total_frees += 1
        self.node.free(item.size)
        self.recorder.on_free(item.item_id, t)
        obs = self.obs
        if obs.enabled:
            self._free_h.add(1.0, item.size)
            if obs.spans_on:
                obs.span_free(item, t)
        if self.capacity is not None:
            self._putters.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Channel {self.name!r} items={len(self._items)} "
            f"bytes={self.bytes_held} on {self.node.name}>"
        )
