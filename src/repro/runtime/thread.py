"""The thread driver: executes task bodies against the simulated cluster.

A task body is a generator of syscalls (:mod:`repro.runtime.syscalls`).
The driver is the *interpreter*: it runs as one DES process, dispatching
each syscall onto channels, CPU pools, and network links, while doing the
bookkeeping the paper's mechanisms require —

* STP metering with blocking/throttle exclusion (§3.3.1);
* feedback piggybacking on every put/get and source throttling at
  ``periodicity_sync()`` (§3.3.2), both delegated to the thread's
  :class:`~repro.control.controller.ThreadController` — the driver
  transports values and realizes planned sleeps, the control plane
  decides;
* reference management (gets hold items until the end of the iteration);
* the per-iteration trace records driving the §4 metrics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.control.controller import ThreadController
from repro.errors import LinkDown, MessageDropped, SimulationError
from repro.runtime.connection import InputConnection, OutputConnection
from repro.runtime.item import Item, ItemView
from repro.runtime.syscalls import (
    CheckDead,
    Compute,
    Get,
    Now,
    PeriodicitySync,
    Put,
    Release,
    Sleep,
    TryGet,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime


class TaskContext:
    """Read-only environment handed to task bodies.

    Attributes
    ----------
    name / params / is_source / is_sink:
        Identity and per-task configuration from the graph.
    rng:
        A dedicated seeded random stream for this task's data-dependent
        behaviour (service-time draws, synthetic content).
    """

    def __init__(
        self,
        name: str,
        params: Dict[str, Any],
        rng: np.random.Generator,
        clock,
        is_source: bool,
        is_sink: bool,
    ) -> None:
        self.name = name
        self.params = params
        self.rng = rng
        self._clock = clock
        self.is_source = is_source
        self.is_sink = is_sink

    def now(self) -> float:
        """Current time (simulated seconds in the DES executor)."""
        return self._clock.now()


class ThreadDriver:
    """Runs one task body as a simulated Stampede thread."""

    def __init__(
        self,
        runtime: "Runtime",
        name: str,
        fn,
        node,
        in_conns: Dict[str, Tuple[object, InputConnection]],
        out_conns: Dict[str, Tuple[object, OutputConnection]],
        ctx: TaskContext,
        controller: ThreadController,
    ) -> None:
        # NOTE: the deprecated ``headroom`` kwarg was removed; set
        # ``AruConfig.headroom`` (the actuator's single source of truth).
        self.runtime = runtime
        self.engine = runtime.engine
        self.name = name
        self.fn = fn
        self.node = node
        self.in_conns = in_conns
        self.out_conns = out_conns
        self.ctx = ctx
        self.controller = controller
        self.meter = controller.meter
        self.throttled = controller.throttled
        # Fixed-slot telemetry handle for the per-iteration sync close,
        # resolved once per thread instead of eight registry lookups per
        # iteration (ISSUE 7). No-op when telemetry/metrics are off.
        self._sync_h = runtime.obs.sync_handle(name)
        # Per-tenant delivery counter: non-None only for sink threads of
        # a multi-tenant runtime with telemetry on (see repro.tenancy).
        self._deliver_h = runtime._delivery_handle(name)
        # per-iteration accumulators
        self._iter_start = runtime.clock.now()
        self._iter_inputs: List[int] = []
        self._iter_outputs: List[int] = []
        self._iter_compute = 0.0
        self._held: List[Tuple[object, ItemView]] = []
        #: Items gotten with hold=True, keyed by item id; released only
        #: via an explicit Release syscall (or at task termination).
        self._retained: Dict[int, Tuple[object, ItemView]] = {}
        self._prev_blocked = 0.0
        self._next_src_ts = 0
        #: Completed iterations (mirrors the recorder, cheap to read).
        self.iterations = 0
        # fault-injection state
        self._stalled = False
        self._stall_until = 0.0
        #: Remote transfers retried after a transport error.
        self.transport_retries = 0
        #: Transport errors (LinkDown/MessageDropped) this thread hit.
        self.transport_errors = 0
        #: Set to the final transport error's message when exhausted
        #: retries killed this thread; None while healthy.
        self.transport_death = None

    # ------------------------------------------------------------------
    def now(self) -> float:
        return self.runtime.clock.now()

    @property
    def virtual_time(self) -> int:
        """This thread's VT for transparent GC: one past the oldest input
        cursor, or (for sources) the next timestamp it will produce."""
        if self.in_conns:
            return min(conn.last_got for (_b, conn) in self.in_conns.values()) + 1
        return self._next_src_ts

    @property
    def waiting(self) -> bool:
        """Whether the thread is inside a legitimate wait (blocked on a
        peer stage or throttle-sleeping). Failure detectors use this to
        tell a stalled thread from one that is merely starved."""
        return self.meter._pause_kind is not None

    @property
    def aru(self):
        """The thread's backwardSTP state, when its policy keeps one
        (compatibility accessor; None for null/disabled stacks)."""
        return getattr(self.controller.policy, "state", None)

    def my_summary(self) -> Optional[float]:
        """The summary value this thread currently advertises upstream."""
        return self.controller.outbound_summary()

    # -- fault injection ---------------------------------------------------
    def stall(self, duration: float) -> None:
        """Freeze this thread for ``duration`` seconds (livelock fault).

        Takes effect at the thread's next syscall boundary. Unlike
        blocking or throttle sleep, stall time is *not* excluded from the
        STP — a hung thread looks slow to the ARU loop, which is the
        point of injecting it.
        """
        if duration <= 0:
            raise SimulationError(f"stall duration must be positive: {duration}")
        self._stalled = True
        self._stall_until = max(self._stall_until, self.now() + duration)

    def _stall_wait(self) -> Generator:
        while True:
            remaining = self._stall_until - self.now()
            if remaining <= 0:
                self._stalled = False
                return
            yield self.engine.timeout(remaining)

    # -- main loop -----------------------------------------------------------
    def run(self) -> Generator:
        """The DES process body: interpret syscalls until the task returns."""
        gen = self.fn(self.ctx)
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"task body of {self.name!r} must be a generator function"
            )
        to_send = None
        try:
            while True:
                try:
                    syscall = gen.send(to_send)
                except StopIteration:
                    break
                if self._stalled:
                    yield from self._stall_wait()
                try:
                    to_send = yield from self._execute(syscall)
                except (LinkDown, MessageDropped) as exc:
                    # Transport retries exhausted (finite RetryPolicy): the
                    # thread dies cleanly — the simulation continues and
                    # the failure detector observes a thread_dead.
                    self.transport_death = str(exc)
                    gen.close()
                    break
        finally:
            # Runs on normal return, task error, and kill-injection alike:
            # release everything held so channel storage is not pinned.
            self._release_held()
            self._release_retained()

    # -- dispatch ----------------------------------------------------------
    def _execute(self, syscall) -> Generator:
        if isinstance(syscall, Compute):
            return (yield from self._do_compute(syscall))
        if isinstance(syscall, Get):
            return (yield from self._do_get(syscall))
        if isinstance(syscall, Put):
            return (yield from self._do_put(syscall))
        if isinstance(syscall, PeriodicitySync):
            return (yield from self._do_sync())
        if isinstance(syscall, TryGet):
            return (yield from self._do_try_get(syscall))
        if isinstance(syscall, Sleep):
            if syscall.seconds > 0:
                yield self.engine.timeout(syscall.seconds)
            return None
        if isinstance(syscall, Now):
            return self.now()
        if isinstance(syscall, Release):
            view = syscall.view
            item_id = getattr(view, "item_id", None)
            entry = self._retained.pop(item_id, None)
            if entry is None:
                raise SimulationError(
                    f"thread {self.name!r} released {view!r}, which it does "
                    "not hold (double release, or missing hold=True?)"
                )
            buffer, held_view = entry
            buffer.release(held_view._item, self.now())
            return None
        if isinstance(syscall, CheckDead):
            buffer, _conn = self._out_conn(syscall.channel)
            return self._is_dead_on_arrival(buffer, int(syscall.ts))
        raise SimulationError(
            f"thread {self.name!r} yielded {syscall!r}; expected a syscall"
        )

    @staticmethod
    def _is_dead_on_arrival(buffer, ts: int) -> bool:
        """Would an item with ``ts`` be skipped by every consumer?"""
        conns = getattr(buffer, "in_conns", None)
        if not conns:
            return False
        return all(conn.last_got >= ts for conn in conns)

    def _remote_transfer(self, src: str, dst: str, nbytes: int) -> Generator:
        """Ship bytes over the network, retrying transport errors.

        Failed attempts (:class:`LinkDown`, :class:`MessageDropped`) are
        reported to the runtime's fault hook (failure detection), then
        retried after the :class:`~repro.runtime.retry.RetryPolicy`'s
        capped-exponential backoff. Backoff waits count as blocked time —
        like any wait on an unavailable peer, they are excluded from the
        STP. Re-raises once the policy is exhausted.
        """
        policy = self.runtime.config.retry
        attempt = 0
        while True:
            try:
                return (yield self.engine.process(
                    self.runtime.network.transfer(src, dst, nbytes)
                ))
            except (LinkDown, MessageDropped) as exc:
                attempt += 1
                self.transport_errors += 1
                hook = self.runtime.fault_hook
                if hook is not None:
                    symptom = ("message_dropped" if isinstance(exc, MessageDropped)
                               else "link_down")
                    hook(symptom, f"{src}->{dst}", self.name)
                if policy.exhausted(attempt):
                    raise
                self.transport_retries += 1
                delay = policy.backoff(attempt)
                if delay > 0:
                    self.meter.block_started()
                    yield self.engine.timeout(delay)
                    self.meter.block_ended()

    def _do_compute(self, sc: Compute) -> Generator:
        actual = yield self.engine.process(self.node.compute(sc.seconds))
        self._iter_compute += actual
        return actual

    def _in_conn(self, channel: str):
        try:
            return self.in_conns[channel]
        except KeyError:
            raise SimulationError(
                f"thread {self.name!r} has no input connection to {channel!r}"
            ) from None

    def _out_conn(self, channel: str):
        try:
            return self.out_conns[channel]
        except KeyError:
            raise SimulationError(
                f"thread {self.name!r} has no output connection to {channel!r}"
            ) from None

    def _do_get(self, sc: Get) -> Generator:
        buffer, conn = self._in_conn(sc.channel)
        deadline = None
        if sc.timeout is not None:
            if sc.timeout < 0:
                raise SimulationError(f"negative get timeout: {sc.timeout}")
            deadline = self.now() + sc.timeout
        while True:
            ev = buffer.request_get(conn, sc.request)
            if not ev.triggered:
                self.meter.block_started()
                if deadline is None:
                    yield ev
                else:
                    remaining = deadline - self.now()
                    if remaining <= 0:
                        self.meter.block_ended()
                        buffer.cancel_get(ev)
                        return None
                    idx, _ = yield self.engine.any_of(
                        [ev, self.engine.timeout(remaining)]
                    )
                    if idx == 1 and not ev.triggered:
                        self.meter.block_ended()
                        buffer.cancel_get(ev)
                        return None
                self.meter.block_ended()
            else:
                yield ev
            # Queues are destructive: a sibling worker woken by the same
            # put may have popped the item before we resumed — re-check.
            if buffer.try_match(conn, sc.request):
                break
            if deadline is not None and self.now() >= deadline:
                return None
        return (yield from self._finish_get(buffer, conn, sc.request,
                                            hold=sc.hold))

    def _do_try_get(self, sc: TryGet) -> Generator:
        buffer, conn = self._in_conn(sc.channel)
        if not buffer.try_match(conn, sc.request):
            return None
        return (yield from self._finish_get(buffer, conn, sc.request))

    def _finish_get(self, buffer, conn, request, hold: bool = False) -> Generator:
        view = buffer.commit_get(
            conn, request, t=self.now(), consumer_summary=self.my_summary()
        )
        # Register ownership before any yield: commit_get took a reference,
        # and a kill landing mid-transfer must still find it in the held
        # set or the item stays pinned in the channel forever.
        if hold:
            self._retained[view.item_id] = (buffer, view)
        else:
            self._held.append((buffer, view))
        # Remote get: ship the item's bytes to the consumer's node. This is
        # production-path time, *included* in the STP.
        if buffer.node.name != self.node.name and view.size > 0:
            yield from self._remote_transfer(
                buffer.node.name, self.node.name, view.size
            )
        self._iter_inputs.append(view.item_id)
        return view

    def _do_put(self, sc: Put) -> Generator:
        buffer, conn = self._out_conn(sc.channel)
        # Remote put: ship the bytes to the channel's node first.
        if buffer.node.name != self.node.name and sc.size > 0:
            yield from self._remote_transfer(
                self.node.name, buffer.node.name, sc.size
            )
        # Back-pressure (capacity extension): waiting for room is excluded
        # from the STP like any other wait on a peer stage.
        while not buffer.has_room():
            ev = buffer.wait_for_room()
            if not ev.triggered:
                self.meter.block_started()
                yield ev
                self.meter.block_ended()
            else:
                yield ev
        item = Item(
            ts=int(sc.ts),
            size=sc.size,
            payload=sc.payload,
            producer=self.name,
            parents=tuple(self._iter_inputs),
            created_at=self.now(),
        )
        feedback = buffer.commit_put(conn, item, t=self.now())
        self.controller.on_feedback(conn.conn_id, feedback)
        self._iter_outputs.append(item.item_id)
        if not self.in_conns:
            self._next_src_ts = max(self._next_src_ts, item.ts + 1)
        return item.item_id

    def _do_sync(self) -> Generator:
        # 1. Source throttling (the actuation) — the policy turns the
        #    propagated feedback into a target period, the actuator into
        #    a sleep that stretches the iteration to it.
        slept = 0.0
        target, sleep_t = self.controller.plan_throttle()
        if sleep_t > 0:
            self.meter.sleep_started()
            yield self.engine.timeout(sleep_t)
            self.meter.sleep_ended()
            slept = sleep_t
        # 2. Close the iteration: current-STP per fig. 2.
        stp = self.meter.sync()
        t_end = self.now()
        blocked = self.meter.total_blocked - self._prev_blocked
        self._prev_blocked = self.meter.total_blocked
        summary = self.my_summary()
        recorder = self.runtime.recorder
        recorder.on_iteration(
            thread=self.name,
            t_start=self._iter_start,
            t_end=t_end,
            compute=self._iter_compute,
            blocked=blocked,
            slept=slept,
            inputs=tuple(self._iter_inputs),
            outputs=tuple(self._iter_outputs),
            is_sink=self.ctx.is_sink,
        )
        recorder.on_stp(
            thread=self.name,
            t=t_end,
            current_stp=stp,
            summary=summary,
            throttle_target=target,
            slept=slept,
        )
        obs = self.runtime.obs
        if obs.enabled:
            self._sync_h.update(
                self._iter_start, t_end, self._iter_compute, blocked,
                slept, stp, summary, target,
            )
            if self._deliver_h is not None:
                self._deliver_h.inc()
            if obs.spans_on:
                obs.span_sync(
                    self.name, self._iter_start, t_end, self._iter_compute,
                    blocked, slept, stp, summary,
                )
        # 3. Release this iteration's item references.
        self._release_held()
        self._iter_inputs = []
        self._iter_outputs = []
        self._iter_compute = 0.0
        self._iter_start = t_end
        self.iterations += 1
        return stp
        yield  # pragma: no cover - unreachable; keeps this a generator path

    def _release_held(self) -> None:
        t = self.now()
        for buffer, view in self._held:
            buffer.release(view._item, t)
        self._held.clear()

    def _release_retained(self) -> None:
        """Drop every held reference (task termination cleanup)."""
        t = self.now()
        for buffer, view in self._retained.values():
            buffer.release(view._item, t)
        self._retained.clear()
