"""Replicated stages: the partition/merge buffer pair behind a worker pool.

The paper's ARU loop only modulates the *period* of a fixed set of
threads; it cannot add capacity when a stage saturates. A *replicated
stage* runs N copies of one worker body behind two special buffers:

* a :class:`PartitionQueue` on the input side — a destructive-read
  queue that assigns every admitted item to exactly one worker *slot*
  (round-robin or hash-by-timestamp), so siblings never race for the
  same item and the item→worker mapping is a pure function of the
  put/registration history (deterministic at fixed N);
* a :class:`MergeChannel` on the output side — a Stampede channel that
  additionally *sequences* results: an item's result becomes visible to
  consumers only once every earlier admitted timestamp has either been
  merged or abandoned (worker crash/retirement). Downstream threads
  therefore observe a ts-ordered stream regardless of which worker
  finished first, which is what keeps metrics and determinism
  fingerprints stable while workers complete out of order.

Spawning and retiring workers reuses the restart machinery of
:meth:`repro.runtime.runtime.Runtime.restart_thread`: a fresh generator,
newly registered connections, and cold ARU state. Retiring a slot
reassigns its pending items to the surviving workers and *abandons* its
in-flight timestamps so the merge frontier cannot wedge on a result
that will never arrive (at-most-once processing under failures).

Neither buffer adds engine events beyond what :class:`~repro.runtime
.squeue.SQueue`/:class:`~repro.runtime.channel.Channel` already
schedule, so a single-replica stage with no scale controller is
event-for-event identical to a plain queue→worker→channel pipeline
(asserted by ``tests/bench/test_elastic_differential.py``).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import Deque, Dict, Optional

from repro.errors import ItemDropped, SimulationError
from repro.runtime.channel import Channel
from repro.runtime.connection import InputConnection, OutputConnection
from repro.runtime.item import Item, ItemView
from repro.runtime.squeue import SQueue
from repro.sim.events import Event
from repro.vt.timestamp import EARLIEST, LATEST

PARTITION_KINDS = ("round-robin", "hash")

#: Knuth's multiplicative constant — spreads consecutive timestamps
#: across slots without the modulo-striping a bare ``ts % n`` gives.
_HASH_MIX = 2654435761


class RoundRobinPartitioner:
    """Assign items to worker slots in rotation.

    The rotation counter advances per *assignment* (including
    reassignment after a slot retires), so the mapping is a pure
    function of the assignment history — independent of simulated time
    and of which worker happens to be idle.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def slot(self, ts: int, n_slots: int) -> int:
        s = self._next % n_slots
        self._next += 1
        return s


class HashPartitioner:
    """Assign items to slots by hashed timestamp (sticky per key).

    Items with the same timestamp always land on the same slot for a
    given pool size — the classic key-affinity partitioner.
    """

    name = "hash"

    def slot(self, ts: int, n_slots: int) -> int:
        return ((ts * _HASH_MIX) >> 7) % n_slots


def make_partitioner(kind: str):
    if kind == "round-robin":
        return RoundRobinPartitioner()
    if kind == "hash":
        return HashPartitioner()
    raise SimulationError(
        f"unknown partition kind {kind!r}; expected one of {PARTITION_KINDS}"
    )


class PartitionQueue(SQueue):
    """A work queue that routes each item to exactly one worker slot.

    Every registered consumer connection is one *slot* with a private
    FIFO. ``commit_put`` assigns the item to a slot through the
    partitioner; ``request_get``/``commit_get`` only ever see the
    calling connection's FIFO, so two replicas never contend for an
    item (unlike a plain :class:`SQueue`, where the pop is
    first-woken-wins).

    Retiring a slot (``unregister_consumer``) reassigns its pending
    items to the remaining slots and abandons its in-flight timestamps
    on the bound :class:`MergeChannel`. If the *last* slot retires,
    pending items park in an orphan FIFO and flush to the next
    registered consumer — a stage is never allowed to silently drop
    queued work during a restart.
    """

    def __init__(self, *args, partition: str = "round-robin", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.partition_kind = partition
        self._partitioner = make_partitioner(partition)
        #: conn_id -> that slot's private FIFO.
        self._pending: Dict[int, Deque[Item]] = {}
        #: ts -> conn_id of the worker currently processing it.
        self._inflight: Dict[int, int] = {}
        #: Items put while no consumer was registered (restart window).
        self._orphans: Deque[Item] = deque()
        self._merge: Optional["MergeChannel"] = None

    # -- stage pairing ----------------------------------------------------
    def bind_merge(self, merge: "MergeChannel") -> None:
        """Pair this queue with its stage's output merge channel."""
        self._merge = merge
        merge.bind_partition(self)

    def on_merged(self, ts: int) -> None:
        """The merge channel saw the result for ``ts`` — no longer in flight."""
        self._inflight.pop(ts, None)

    # -- registration ------------------------------------------------------
    def register_consumer(self, thread: str) -> InputConnection:
        conn = super().register_consumer(thread)
        self._pending[conn.conn_id] = deque()
        if self._orphans:
            orphans, self._orphans = self._orphans, deque()
            for item in orphans:
                self._assign(item)
            self._getters.notify_all()
        return conn

    def unregister_consumer(self, conn: InputConnection) -> None:
        pending = self._pending.pop(conn.conn_id, None)
        super().unregister_consumer(conn)
        # Abandon this worker's in-flight timestamps: their results will
        # never be put, so the merge frontier must stop waiting for them.
        for ts in [t for t, c in self._inflight.items() if c == conn.conn_id]:
            del self._inflight[ts]
            if self._merge is not None:
                self._merge.abandon(ts)
        # Reassign queued (unstarted) work to the surviving slots.
        if pending:
            if self.in_conns:
                for item in pending:
                    self._assign(item)
                self._getters.notify_all()
            else:
                self._orphans.extend(pending)

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(q) for q in self._pending.values()) + len(self._orphans)

    @property
    def bytes_held(self) -> int:
        total = sum(i.size for q in self._pending.values() for i in q)
        return total + sum(i.size for i in self._orphans)

    def pending_of(self, conn: InputConnection) -> int:
        """Items currently queued on one slot (diagnostics/tests)."""
        return len(self._pending.get(conn.conn_id, ()))

    @property
    def inflight(self) -> Dict[int, int]:
        """ts -> conn_id snapshot of items being processed (read-only use)."""
        return dict(self._inflight)

    # -- put side ----------------------------------------------------------
    def has_room(self) -> bool:
        return self.capacity is None or len(self) < self.capacity

    def _assign(self, item: Item) -> None:
        if not self.in_conns:
            self._orphans.append(item)
            return
        idx = self._partitioner.slot(item.ts, len(self.in_conns))
        self._pending[self.in_conns[idx].conn_id].append(item)

    def commit_put(self, conn: OutputConnection, item: Item, t: float) -> Optional[float]:
        """Admit ``item``: route it to a slot and expect its result."""
        if not self.has_room():
            raise SimulationError(f"commit_put on full queue {self.name!r}")
        self._assign(item)
        self.total_puts += 1
        conn.puts += 1
        self.node.alloc(item.size)
        self.recorder.on_alloc(
            item_id=item.item_id,
            channel=self.name,
            node=self.node.name,
            ts=item.ts,
            size=item.size,
            producer=item.producer,
            parents=item.parents,
            t=t,
        )
        obs = self.obs
        if obs.enabled:
            self._put_h.add(1.0, item.size)
            if obs.spans_on:
                obs.span_put(self.name, item, t)
        if self._merge is not None:
            self._merge.expect(item.ts)
        self._getters.notify_all()
        return self.feedback.advertise() if self.feedback is not None else None

    # -- get side ----------------------------------------------------------
    def request_get(self, conn: InputConnection, request: object = None) -> Event:
        if conn not in self.in_conns:
            raise SimulationError(f"unregistered consumer on {self.name!r}")
        slot = conn.conn_id
        return self._getters.wait(lambda: bool(self._pending.get(slot)) or None)

    def try_match(self, conn: InputConnection, request: object = None) -> bool:
        return bool(self._pending.get(conn.conn_id))

    def commit_get(
        self,
        conn: InputConnection,
        request: object,
        t: float,
        consumer_summary: Optional[float] = None,
    ) -> ItemView:
        """Pop the head of this slot's FIFO and mark its ts in flight."""
        pending = self._pending.get(conn.conn_id)
        if not pending:
            raise SimulationError(
                f"commit_get on empty slot of {self.name!r} "
                f"(worker {conn.thread!r})"
            )
        item = pending.popleft()
        conn.last_got = max(conn.last_got, item.ts)
        conn.gets += 1
        self.total_gets += 1
        item.acquire()
        self._inflight[item.ts] = conn.conn_id
        self.recorder.on_get(item.item_id, conn.conn_id, conn.thread, t)
        obs = self.obs
        if obs.enabled:
            conn.get_h.inc()
            if obs.spans_on:
                obs.span_get(item, conn.thread, t)
        if self.feedback is not None and consumer_summary is not None:
            self.feedback.receive(conn.conn_id, consumer_summary)
        if self.capacity is not None:
            self._putters.notify_all()
        return ItemView(item, self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PartitionQueue {self.name!r} depth={len(self)} "
            f"slots={len(self.in_conns)} inflight={len(self._inflight)}>"
        )


class MergeChannel(Channel):
    """A Stampede channel that sequences a worker pool's results.

    The paired :class:`PartitionQueue` calls :meth:`expect` when a job
    is admitted; the timestamp stays *outstanding* until its result is
    put here (or the processing worker dies and the ts is abandoned).
    Consumers only see items strictly below the outstanding frontier —
    ``min(outstanding)`` — so an early finisher cannot overtake a
    still-running sibling in the downstream view. At fixed N this makes
    the consumed sequence (and hence every derived metric) independent
    of worker completion interleavings.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Timestamps admitted upstream whose results are still pending.
        self._outstanding: set = set()
        self._partition: Optional[PartitionQueue] = None

    # -- stage pairing ----------------------------------------------------
    def bind_partition(self, partition: PartitionQueue) -> None:
        self._partition = partition

    def expect(self, ts: int) -> None:
        """A job with ``ts`` was admitted upstream; gate its successors."""
        self._outstanding.add(int(ts))

    def abandon(self, ts: int) -> None:
        """The worker processing ``ts`` died/retired: unblock the frontier."""
        ts = int(ts)
        if ts in self._outstanding:
            self._outstanding.discard(ts)
            # Items above the old frontier may have just become visible.
            self._getters.notify_all()

    @property
    def frontier(self) -> Optional[int]:
        """Smallest outstanding ts (results at/after it are hidden)."""
        return min(self._outstanding) if self._outstanding else None

    @property
    def outstanding(self) -> int:
        """Number of admitted-but-unmerged timestamps (diagnostics)."""
        return len(self._outstanding)

    # -- put side ----------------------------------------------------------
    def commit_put(self, conn: OutputConnection, item: Item, t: float) -> Optional[float]:
        feedback = super().commit_put(conn, item, t)
        ts = item.ts
        if ts in self._outstanding:
            self._outstanding.discard(ts)
            if self._partition is not None:
                self._partition.on_merged(ts)
            # The frontier moved: re-check waiters, items at or above
            # the put ts may now be visible.
            self._getters.notify_all()
        return feedback

    # -- get side ----------------------------------------------------------
    def _visible_order(self):
        """The sorted visible timestamps (strictly below the frontier)."""
        if not self._outstanding:
            return self._order
        return self._order[: bisect_left(self._order, min(self._outstanding))]

    def _match(self, conn: InputConnection, request) -> Optional[Item]:
        order = self._visible_order()
        if not order:
            return None
        if request is LATEST:
            ts = order[-1]
            return self._items[ts] if ts > conn.last_got else None
        if request is EARLIEST:
            idx = bisect_right(order, conn.last_got)
            if idx >= len(order):
                return None
            return self._items[order[idx]]
        ts = int(request)
        if ts <= conn.last_got:
            raise ItemDropped(
                f"{conn.thread!r} re-requested ts {ts} <= cursor {conn.last_got} "
                f"on channel {self.name!r}"
            )
        if self._outstanding and ts >= min(self._outstanding):
            return None
        return self._items.get(ts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MergeChannel {self.name!r} items={len(self._items)} "
            f"outstanding={len(self._outstanding)}>"
        )
