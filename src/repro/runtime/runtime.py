"""Runtime orchestration: graph + config -> a runnable simulated system.

:class:`Runtime` instantiates the cluster (nodes, network), the buffers
(channels/queues with their GC and feedback endpoints), and one
:class:`~repro.runtime.thread.ThreadDriver` per task thread — each with a
control stack assembled by :mod:`repro.control` from the configured
policy — then runs the event engine for a simulated horizon. After
:meth:`run`, the trace in :attr:`recorder` feeds the metrics modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.aru.config import AruConfig, aru_disabled
from repro.aru.filters import resolve_factory
from repro.aru.stp import StpMeter
from repro.cluster.load import LoadSpec, spawn_load
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.spec import ClusterSpec, config1_spec
from repro.control.factory import build_thread_controller
from repro.control.propagation import FeedbackBus
from repro.control.scale import ScaleConfig, StageScaleController
from repro.errors import ConfigError, SimulationError
from repro.gc import GarbageCollector, make_gc
from repro.metrics.recorder import TraceRecorder
from repro.obs.hub import resolve_hub
from repro.runtime.channel import Channel
from repro.runtime.graph import CHANNEL, QUEUE, TaskGraph
from repro.runtime.replicated import MergeChannel, PartitionQueue
from repro.runtime.retry import RetryPolicy
from repro.runtime.squeue import SQueue
from repro.runtime.thread import TaskContext, ThreadDriver
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.vt.clock import SimClock


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything outside the task graph that defines a run."""

    cluster: ClusterSpec = field(default_factory=config1_spec)
    gc: Union[str, GarbageCollector, None] = "dgc"
    aru: AruConfig = field(default_factory=aru_disabled)
    seed: int = 0
    #: Overrides graph placement: graph node name -> cluster node name.
    placement: Dict[str, str] = field(default_factory=dict)
    record_stp: bool = True
    #: Background-load bursts injected into the cluster (§1's "current
    #: load"); the ARU loop must adapt through them.
    loads: tuple = ()
    #: Transport retry/backoff for remote put/get under link faults.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Elastic-parallelism control for replicated stages; ``None`` (or a
    #: disabled/null config) installs no controller processes, keeping
    #: the run bit-identical to a fixed-N one.
    scale: Optional[ScaleConfig] = None
    #: Telemetry: False/None (off, zero overhead), True (default hub),
    #: a :class:`~repro.obs.TelemetryConfig`, or a pre-built
    #: :class:`~repro.obs.TelemetryHub` the caller keeps for export.
    telemetry: object = False


class Runtime:
    """A fully-wired simulated Stampede application."""

    def __init__(self, graph: TaskGraph, config: Optional[RuntimeConfig] = None) -> None:
        self.graph = graph
        self.config = config or RuntimeConfig()
        self._validate_graph()

        self.engine = Engine()
        self.clock = SimClock(self.engine)
        self.rngs = RngRegistry(seed=self.config.seed)
        self.recorder = TraceRecorder(record_stp=self.config.record_stp)
        self.obs = resolve_hub(self.config.telemetry).bind(
            time_fn=self.clock.now,
            run={"seed": self.config.seed, "gc": str(self.config.gc),
                 "policy": self.config.aru.policy},
        )
        self.gc = make_gc(self.config.gc)
        self.gc.bind(self)

        self.nodes: Dict[str, Node] = {
            spec.name: Node(self.engine, spec, self.rngs)
            for spec in self.config.cluster.nodes
        }
        self.network = Network(self.engine, self.config.cluster, obs=self.obs)
        self.feedback_bus = FeedbackBus(self.config.aru, time_fn=self.clock.now)

        self._thread_placement = {
            t: self._resolve_thread_node(t) for t in graph.threads()
        }
        self.buffers: Dict[str, object] = {}
        for name in graph.buffers():
            self.buffers[name] = self._build_buffer(name)
        self.drivers: Dict[str, ThreadDriver] = {}
        for name in graph.threads():
            self.drivers[name] = self._build_driver(name)
        for stage in graph.replicated_stages():
            spec = graph.stage_spec(stage)
            self.buffers[spec["input"]].bind_merge(self.buffers[spec["output"]])
        self._processes = {
            name: self.engine.process(driver.run(), name=name)
            for name, driver in self.drivers.items()
        }
        for load in self.config.loads:
            if not isinstance(load, LoadSpec):
                raise ConfigError(f"loads must be LoadSpec instances, got {load!r}")
            if load.node not in self.nodes:
                raise ConfigError(f"load targets unknown node {load.node!r}")
            spawn_load(self.engine, self.nodes[load.node], load)
        #: Per-stage scale controllers (empty unless elastic scaling is
        #: configured AND the graph has replicated stages — the same
        #: zero-added-events-when-off contract as the fault injector).
        self.scalers: Dict[str, StageScaleController] = {}
        self._scaler_processes: Dict[str, object] = {}
        self._install_scale_controllers(graph.replicated_stages())
        self._ran = False
        #: Failure-detection callback ``(symptom, target, source)``;
        #: installed by a FaultInjector, None in fault-free runs.
        self.fault_hook = None

    # -- per-thread/buffer resolution hooks ---------------------------------
    # Single-tenant wiring delegates straight to the run-level config; the
    # multi-tenant runtime (repro.tenancy) overrides these so each tenant
    # gets its own control plane, RNG streams, and namespaced buffers
    # without the base construction path paying anything for it.
    def _validate_graph(self) -> None:
        self.graph.validate()

    def _aru_for(self, thread: str) -> AruConfig:
        """The ARU config that builds ``thread``'s control stack."""
        return self.config.aru

    def _feedback_endpoint_for(self, buffer: str, compress_op):
        """The feedback endpoint wired into ``buffer`` (may be None)."""
        return self.feedback_bus.endpoint_for(buffer, compress_op)

    def _task_rng(self, thread: str):
        """The RNG stream driving ``thread``'s task body."""
        return self.rngs.stream(f"task.{thread}")

    def _conn_key(self, thread: str, buffer: str) -> str:
        """The name ``thread``'s task body uses for ``buffer``.

        Task bodies yield ``Get``/``Put`` with the channel names their
        graph declared; a namespacing runtime maps the (renamed) global
        buffer back to that local name here.
        """
        return buffer

    def _delivery_handle(self, thread: str):
        """Per-tenant delivery counter for a sink thread, or None."""
        return None

    def _scale_config_for(self, stage: str) -> Optional[ScaleConfig]:
        """The elastic-scaling config governing ``stage`` (None = off)."""
        return self.config.scale

    def _install_scale_controllers(self, stages) -> None:
        """Spawn scale-controller processes for ``stages`` where configured."""
        for stage in stages:
            scale = self._scale_config_for(stage)
            if scale is None or not scale.enabled or scale.policy == "null":
                continue
            ctl = StageScaleController(self, stage, scale)
            self.scalers[stage] = ctl
            self._scaler_processes[stage] = self.engine.process(
                ctl.run(), name=f"scaler.{stage}"
            )

    # -- placement ---------------------------------------------------------
    def _resolve_thread_node(self, thread: str) -> str:
        attrs = self.graph.attrs(thread)
        name = self.config.placement.get(thread) or attrs.get("node")
        if name is None:
            name = self.config.cluster.nodes[0].name
        if name not in self.nodes:
            raise ConfigError(
                f"thread {thread!r} placed on unknown node {name!r} "
                f"(cluster has {sorted(self.nodes)})"
            )
        return name

    def _resolve_buffer_node(self, buffer: str) -> str:
        attrs = self.graph.attrs(buffer)
        name = self.config.placement.get(buffer) or attrs.get("node")
        if name is None:
            # Stampede convention (and the paper's config 2): a channel
            # lives on its producer's node.
            producers = self.graph.producers_of(buffer)
            if producers:
                name = self._thread_placement[producers[0]]
            else:  # pragma: no cover - validate() rejects producerless buffers
                name = self.config.cluster.nodes[0].name
        if name not in self.nodes:
            raise ConfigError(
                f"buffer {buffer!r} placed on unknown node {name!r} "
                f"(cluster has {sorted(self.nodes)})"
            )
        return name

    # -- construction ----------------------------------------------------
    def _build_buffer(self, name: str):
        kind = self.graph.kind(name)
        attrs = self.graph.attrs(name)
        node = self.nodes[self._resolve_buffer_node(name)]
        capacity = attrs.get("capacity")
        feedback = self._feedback_endpoint_for(name, attrs.get("compress_op"))
        if attrs.get("partition_of") is not None:
            return PartitionQueue(
                self.engine,
                name,
                node,
                recorder=self.recorder,
                feedback=feedback,
                capacity=capacity,
                obs=self.obs,
                partition=attrs.get("partition", "round-robin"),
            )
        if attrs.get("merge_of") is not None:
            return MergeChannel(
                self.engine,
                name,
                node,
                recorder=self.recorder,
                gc=self.gc,
                feedback=feedback,
                capacity=capacity,
                obs=self.obs,
            )
        if kind == CHANNEL:
            return Channel(
                self.engine,
                name,
                node,
                recorder=self.recorder,
                gc=self.gc,
                feedback=feedback,
                capacity=capacity,
                obs=self.obs,
            )
        if kind == QUEUE:
            return SQueue(
                self.engine,
                name,
                node,
                recorder=self.recorder,
                feedback=feedback,
                capacity=capacity,
                obs=self.obs,
            )
        raise SimulationError(f"unknown buffer kind {kind!r}")  # pragma: no cover

    def _build_driver(self, name: str) -> ThreadDriver:
        attrs = self.graph.attrs(name)
        node = self.nodes[self._thread_placement[name]]
        aru = self._aru_for(name)

        in_conns = {
            self._conn_key(name, buf):
                (self.buffers[buf], self.buffers[buf].register_consumer(name))
            for buf in self.graph.inputs_of(name)
        }
        out_conns = {
            self._conn_key(name, buf):
                (self.buffers[buf], self.buffers[buf].register_producer(name))
            for buf in self.graph.outputs_of(name)
        }

        meter = StpMeter(self.clock, stp_filter=resolve_factory(aru.stp_filter)())
        is_source = self.graph.is_source(name)
        is_sink = self.graph.is_sink(name)
        controller = build_thread_controller(
            aru,
            name,
            meter,
            self.clock.now,
            is_source,
            compress_op=attrs.get("compress_op"),
        )
        ctx = TaskContext(
            name=name,
            params=attrs.get("params", {}),
            rng=self._task_rng(name),
            clock=self.clock,
            is_source=is_source,
            is_sink=is_sink,
        )
        return ThreadDriver(
            runtime=self,
            name=name,
            fn=attrs["fn"],
            node=node,
            in_conns=in_conns,
            out_conns=out_conns,
            ctx=ctx,
            controller=controller,
        )

    # -- execution ---------------------------------------------------------
    def run(self, until: float) -> TraceRecorder:
        """Simulate ``until`` seconds; returns the finalized trace.

        One-shot convenience over :meth:`advance` + :meth:`finalize`.
        """
        if self._ran:
            raise SimulationError("Runtime.run() may only be called once")
        if until <= 0:
            raise ConfigError(f"simulation horizon must be positive, got {until}")
        self.advance(until - self.engine.now)
        return self.finalize()

    def advance(self, dt: float) -> "Runtime":
        """Simulate ``dt`` more seconds (incremental execution).

        May be called repeatedly — e.g. to inspect channel state or
        inject load between phases — until :meth:`finalize` seals the
        trace. Returns ``self`` for chaining.
        """
        if self._ran:
            raise SimulationError("runtime already finalized")
        if dt <= 0:
            raise ConfigError(f"advance needs a positive dt, got {dt}")
        self.engine.run(until=self.engine.now + dt)
        return self

    def finalize(self) -> TraceRecorder:
        """Stop measuring; returns the finalized trace."""
        if self._ran:
            raise SimulationError("runtime already finalized")
        self._ran = True
        self.recorder.finalize(self.engine.now)
        if self.obs.enabled:
            self.obs.on_finalize(self.stats(), self.engine.now)
        return self.recorder

    # -- runtime-global state -------------------------------------------------
    def global_virtual_time(self) -> Optional[int]:
        """Minimum thread virtual time (transparent GC's low-water mark)."""
        if not self.drivers:
            return None
        return min(d.virtual_time for d in self.drivers.values())

    def channel(self, name: str) -> Channel:
        buf = self.buffers.get(name)
        if not isinstance(buf, Channel):
            raise ConfigError(f"{name!r} is not a channel")
        return buf

    def queue(self, name: str) -> SQueue:
        buf = self.buffers.get(name)
        if not isinstance(buf, SQueue):
            raise ConfigError(f"{name!r} is not a queue")
        return buf

    def kill_thread(self, name: str, reason: str = "killed") -> None:
        """Failure injection: terminate one task thread mid-run.

        The thread's generator receives :class:`~repro.errors.ProcessKilled`
        at its current yield point (releasing held items on the way out);
        the rest of the application keeps running — and mis-reacting, which
        is the point: a dead consumer stops advancing its cursors, so DGC
        guarantees freeze and upstream storage grows. Use between
        :meth:`advance` phases to study such scenarios.
        """
        process = self._processes.get(name)
        if process is None:
            raise ConfigError(f"no thread named {name!r}")
        process.kill(reason)

    def thread_alive(self, name: str) -> bool:
        """Whether the named task thread is still running."""
        process = self._processes.get(name)
        if process is None:
            raise ConfigError(f"no thread named {name!r}")
        return process.is_alive

    def stall_thread(self, name: str, duration: float) -> None:
        """Failure injection: freeze a thread for ``duration`` seconds.

        The thread stops making progress at its next syscall boundary
        but stays alive — the livelock case failure detectors must tell
        apart from a crash (it still holds its connections and its
        backwardSTP slots keep their last values until the TTL).
        """
        driver = self.drivers.get(name)
        if driver is None:
            raise ConfigError(f"no thread named {name!r}")
        driver.stall(duration)

    def restart_thread(self, name: str) -> None:
        """Failure recovery: respawn a task thread with cold state.

        Mirrors a real supervisor restart: the old incarnation is killed
        (if still alive), its connections are unregistered from every
        buffer — evicting its backwardSTP slots and releasing its DGC
        cursors — and a fresh driver (new generator, new connections,
        reset STP meter and ARU state) is registered on the engine. The
        restarted thread re-propagates its summary-STP from scratch on
        its first gets, exactly like a cold-started pipeline stage.
        """
        old = self.drivers.get(name)
        if old is None:
            raise ConfigError(f"no thread named {name!r}")
        process = self._processes[name]
        if process.is_alive:
            process.kill("restart")
        now = self.engine.now
        for buffer, conn in old.in_conns.values():
            buffer.unregister_consumer(conn)
            collect = getattr(buffer, "maybe_collect", None)
            if collect is not None:
                collect(now)
        for buffer, conn in old.out_conns.values():
            buffer.unregister_producer(conn)
        driver = self._build_driver(name)
        self.drivers[name] = driver
        self._processes[name] = self.engine.process(driver.run(), name=name)

    # -- elastic parallelism ------------------------------------------------
    def replica_count(self, stage: str, alive_only: bool = True) -> int:
        """Worker replicas of a replicated stage (alive by default)."""
        names = self.graph.replicas_of(stage)
        if not alive_only:
            return len(names)
        return sum(1 for n in names if self.thread_alive(n))

    def _admit_replica(self, stage: str, node_name: str) -> bool:
        """R-Storm-style admission: charge the replica against the node.

        A new worker is admitted only while its target node is up and
        has an uncommitted CPU (alive resident threads < ``ncpus``) —
        spawning past the core count would just re-create the
        oversubscription the scale-out is trying to relieve. The
        multi-tenant runtime overrides this to additionally draw the
        replica's CPU from the owning tenant's ledger budget.
        """
        node = self.nodes[node_name]
        if node.failed:
            return False
        alive = sum(
            1 for t in self.threads_on(node_name)
            if self._processes[t].is_alive
        )
        return alive < node.spec.ncpus

    def _on_replica_spawned(self, stage: str, name: str,
                            node_name: str) -> None:
        """Hook: a replica admitted by :meth:`_admit_replica` went live."""

    def _on_replica_retired(self, stage: str, name: str) -> None:
        """Hook: a replica was retired; release anything it drew."""

    def scale_out(self, stage: str, reason: str = "scale-out") -> Optional[str]:
        """Spawn one more worker replica for ``stage``.

        Reuses the restart machinery's spawn half: a fresh generator
        with new connections, a reset STP meter, and cold ARU state —
        a scaled-out worker is indistinguishable from a restarted one.
        Returns the new thread name, or ``None`` if the stage is at
        ``max_replicas`` or node admission refuses the CPU.
        """
        spec = self.graph.stage_spec(stage)
        before = self.replica_count(stage)
        if before >= spec["max_replicas"]:
            return None
        node_name = (self.config.placement.get(stage) or spec["node"]
                     or self.config.cluster.nodes[0].name)
        if node_name not in self.nodes:
            raise ConfigError(
                f"stage {stage!r} placed on unknown node {node_name!r}"
            )
        if not self._admit_replica(stage, node_name):
            return None
        name = self.graph.add_replica(stage)
        self._thread_placement[name] = self._resolve_thread_node(name)
        driver = self._build_driver(name)
        self.drivers[name] = driver
        self._processes[name] = self.engine.process(driver.run(), name=name)
        self._on_replica_spawned(stage, name, node_name)
        if self.obs.enabled:
            self.obs.on_scale(stage, "out", before, before + 1,
                              self.engine.now, reason, name)
        return name

    def scale_in(self, stage: str, reason: str = "scale-in") -> Optional[str]:
        """Retire one worker replica of ``stage`` (highest index first).

        Refuses to drop below ``min_replicas`` (and never below one).
        Returns the retired thread name, or ``None`` if at the floor.
        """
        spec = self.graph.stage_spec(stage)
        alive = [n for n in self.graph.replicas_of(stage)
                 if self.thread_alive(n)]
        if len(alive) <= max(1, spec["min_replicas"]):
            return None
        victim = alive[-1]
        self.retire_replica(stage, victim, reason=reason)
        return victim

    def retire_replica(self, stage: str, name: str, reason: str = "retire") -> None:
        """Remove one replica entirely (the restart machinery's kill half).

        Killing releases the worker's held items; unregistering its
        consumer connection makes the partition queue reassign the
        replica's pending work to surviving slots and abandon its
        in-flight timestamps on the merge, so the output frontier never
        waits on a retired worker.
        """
        self.graph.stage_spec(stage)  # validates the stage exists
        before = self.replica_count(stage)
        process = self._processes.get(name)
        if process is None:
            raise ConfigError(f"no thread named {name!r}")
        if process.is_alive:
            process.kill(reason)
        old = self.drivers[name]
        now = self.engine.now
        for buffer, conn in old.in_conns.values():
            buffer.unregister_consumer(conn)
            collect = getattr(buffer, "maybe_collect", None)
            if collect is not None:
                collect(now)
        for buffer, conn in old.out_conns.values():
            buffer.unregister_producer(conn)
        del self.drivers[name]
        del self._processes[name]
        del self._thread_placement[name]
        self.graph.remove_replica(stage, name)
        self._on_replica_retired(stage, name)
        if self.obs.enabled:
            self.obs.on_scale(stage, "in", before,
                              self.replica_count(stage), now, reason, name)

    def reap_dead_replicas(self, stage: str) -> int:
        """Clean up crashed replicas of ``stage``; returns replicas handled.

        A crashed replica above the floor is retired (its partition slot
        reassigned, its merge timestamps abandoned); at or below the
        floor it is restarted instead, so a replicated stage never
        silently loses its minimum capacity.
        """
        spec = self.graph.stage_spec(stage)
        floor = max(1, spec["min_replicas"])
        handled = 0
        for name in self.graph.replicas_of(stage):
            if self.thread_alive(name):
                continue
            if self.replica_count(stage) > floor:
                self.retire_replica(stage, name, reason="reap")
            else:
                self.restart_thread(name)
                if self.obs.enabled:
                    self.obs.on_scale(stage, "restart",
                                      self.replica_count(stage),
                                      self.replica_count(stage),
                                      self.engine.now, "reap", name)
            handled += 1
        return handled

    def threads_on(self, node_name: str) -> list:
        """Task threads placed on the named cluster node."""
        if node_name not in self.nodes:
            raise ConfigError(f"no node named {node_name!r}")
        return [t for t, n in self._thread_placement.items() if n == node_name]

    def crash_node(self, name: str, reason: str = "node crash") -> None:
        """Failure injection: crash a node, killing its resident threads.

        Channel storage placed on the node survives (the fault model's
        stable-storage simplification — see docs/fault-model.md); what a
        crash destroys is the *computation*: every resident thread dies.
        """
        node = self.nodes.get(name)
        if node is None:
            raise ConfigError(f"no node named {name!r}")
        node.fail()
        for thread in self.threads_on(name):
            if self._processes[thread].is_alive:
                self._processes[thread].kill(reason)

    def restart_node(self, name: str) -> None:
        """Failure recovery: bring a node back, respawning its dead threads."""
        node = self.nodes.get(name)
        if node is None:
            raise ConfigError(f"no node named {name!r}")
        node.recover()
        for thread in self.threads_on(name):
            if not self._processes[thread].is_alive:
                self.restart_thread(thread)

    def stats(self) -> Dict[str, dict]:
        """Snapshot of runtime-object statistics (diagnostics/reports)."""
        snapshot = {
            "engine": {
                "now": self.engine.now,
                "events_processed": self.engine.events_processed,
            },
            "nodes": {
                name: {
                    "busy_time": node.busy_time,
                    "mem_in_use": node.mem_in_use,
                    "mem_peak": node.mem_peak,
                    "cpu_grants": node.cpus.total_grants,
                    "cpu_wait_time": node.cpus.total_wait_time,
                }
                for name, node in self.nodes.items()
            },
            "network": {"total_bytes": self.network.total_bytes},
            "buffers": {
                name: {
                    "kind": buf.kind,
                    "depth": len(buf),
                    "bytes_held": buf.bytes_held,
                    "puts": buf.total_puts,
                    "gets": buf.total_gets,
                    "skips": getattr(buf, "total_skips", 0),
                    "frees": buf.total_frees,
                }
                for name, buf in self.buffers.items()
            },
            "threads": {
                name: {
                    "iterations": driver.iterations,
                    "virtual_time": driver.virtual_time,
                    "blocked": driver.meter.total_blocked,
                    "slept": driver.meter.total_slept,
                }
                for name, driver in self.drivers.items()
            },
        }
        if self.graph.replicated_stages():
            snapshot["scaling"] = {
                stage: {
                    "replicas": self.replica_count(stage),
                    "decisions": (len(self.scalers[stage].decisions)
                                  if stage in self.scalers else 0),
                    "denied": (self.scalers[stage].denied_total
                               if stage in self.scalers else 0),
                }
                for stage in self.graph.replicated_stages()
            }
        return snapshot
