"""Stampede-flavoured public API facade.

The paper describes ARU as additions to Stampede's C API: a
``periodicity_sync()`` call, summary-STP piggybacking on ``put/get``, and
an optional dependency-operator parameter on ``spd_chan_alloc()``. This
module mirrors that surface so application code reads like the paper:

>>> from repro.runtime.api import StampedeApp, get, put, compute, periodicity_sync
>>> app = StampedeApp("demo")
>>> def digitizer(ctx):
...     ts = 0
...     while True:
...         yield compute(0.01)
...         yield put("frames", ts=ts, size=1000)
...         ts += 1
...         yield periodicity_sync()
>>> def tracker(ctx):
...     while True:
...         frame = yield get("frames")
...         yield compute(0.05)
...         yield periodicity_sync()
>>> app.spd_thread_create("digitizer", digitizer)     # doctest: +ELLIPSIS
<...>
>>> app.spd_chan_alloc("frames", compress_op="min")   # doctest: +ELLIPSIS
<...>
>>> app.spd_thread_create("tracker", tracker, sink=True)  # doctest: +ELLIPSIS
<...>
>>> app.spd_attach_output("digitizer", "frames")      # doctest: +ELLIPSIS
<...>
>>> app.spd_attach_input("frames", "tracker")         # doctest: +ELLIPSIS
<...>
>>> trace = app.run_simulated(until=5.0)
>>> len(trace.sink_iterations()) > 0
True

The lowercase helpers (:func:`get`, :func:`put`, :func:`compute`,
:func:`sleep`, :func:`try_get`, :func:`now`, :func:`periodicity_sync`)
are constructors for the corresponding syscalls.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from repro.aru.config import AruConfig, aru_disabled
from repro.cluster.spec import ClusterSpec
from repro.metrics.recorder import TraceRecorder
from repro.runtime.graph import TaskGraph
from repro.runtime.syscalls import (
    Compute,
    Get,
    Now,
    PeriodicitySync,
    Put,
    Sleep,
    TryGet,
)
from repro.vt.timestamp import LATEST


# -- syscall constructors (lowercase, paper-style) ---------------------------

def get(channel: str, request=LATEST) -> Get:
    """Blocking get (``spd_get``); defaults to get-LATEST."""
    return Get(channel, request)


def try_get(channel: str, request=LATEST) -> TryGet:
    """Non-blocking get; yields ``None`` when nothing matches."""
    return TryGet(channel, request)


def put(channel: str, ts: int, size: int, payload: Any = None) -> Put:
    """Put a timestamped item (``spd_put``)."""
    return Put(channel, ts=ts, size=size, payload=payload)


def compute(seconds: float) -> Compute:
    """Model ``seconds`` of CPU work."""
    return Compute(seconds)


def sleep(seconds: float) -> Sleep:
    """Application-paced delay (counts toward the STP)."""
    return Sleep(seconds)


def now() -> Now:
    """Read the current time."""
    return Now()


def periodicity_sync() -> PeriodicitySync:
    """End-of-iteration marker — the API call the paper adds to Stampede."""
    return PeriodicitySync()


# -- application builder ------------------------------------------------------

class StampedeApp:
    """Builder mirroring Stampede's allocation API.

    Wraps a :class:`~repro.runtime.graph.TaskGraph` and provides run
    entry points for both executors.
    """

    def __init__(self, name: str = "app") -> None:
        self.graph = TaskGraph(name)

    # -- allocation ------------------------------------------------------
    def spd_thread_create(
        self,
        name: str,
        fn: Callable,
        *,
        node: Optional[str] = None,
        sink: bool = False,
        params: Optional[Dict[str, Any]] = None,
        compress_op: Optional[object] = None,
    ) -> "StampedeApp":
        """Declare a task thread (cf. Stampede ``spd_thread_create``)."""
        self.graph.add_thread(
            name, fn, node=node, sink=sink, params=params, compress_op=compress_op
        )
        return self

    def spd_chan_alloc(
        self,
        name: str,
        *,
        node: Optional[str] = None,
        compress_op: Optional[object] = None,
        capacity: Optional[int] = None,
    ) -> "StampedeApp":
        """Allocate a channel. ``compress_op`` is the paper's added
        optional dependency-operator parameter."""
        self.graph.add_channel(
            name, node=node, compress_op=compress_op, capacity=capacity
        )
        return self

    def spd_queue_alloc(
        self,
        name: str,
        *,
        node: Optional[str] = None,
        compress_op: Optional[object] = None,
        capacity: Optional[int] = None,
    ) -> "StampedeApp":
        """Allocate a FIFO queue."""
        self.graph.add_queue(
            name, node=node, compress_op=compress_op, capacity=capacity
        )
        return self

    def spd_attach_output(self, thread: str, buffer: str) -> "StampedeApp":
        """Connect ``thread``'s output to ``buffer``."""
        self.graph.connect(thread, buffer)
        return self

    def spd_attach_input(self, buffer: str, thread: str) -> "StampedeApp":
        """Connect ``buffer`` as an input of ``thread``."""
        self.graph.connect(buffer, thread)
        return self

    # -- pythonic aliases --------------------------------------------------
    # Preferred spellings for new code (see docs/tutorial.md); the
    # ``spd_*`` names mirror the paper's Stampede C API and stay.
    create_thread = spd_thread_create
    alloc_channel = spd_chan_alloc
    alloc_queue = spd_queue_alloc
    attach_output = spd_attach_output
    attach_input = spd_attach_input

    # -- execution ---------------------------------------------------------
    def run_simulated(
        self,
        until: float,
        *,
        cluster: Optional[ClusterSpec] = None,
        aru: Optional[AruConfig] = None,
        gc: Union[str, None] = "dgc",
        seed: int = 0,
        placement: Optional[Dict[str, str]] = None,
        telemetry: Any = False,
    ) -> TraceRecorder:
        """Run on the DES executor; returns the finalized trace.

        Delegates to :func:`repro.run_experiment` (the unified front
        door); use that directly when you want the full
        :class:`~repro.experiment.RunResult` instead of just the trace.
        """
        from repro.experiment import ExperimentSpec, run_experiment

        spec = ExperimentSpec(
            app=self.graph,
            config=cluster,
            policy=aru or aru_disabled(),
            gc=gc,
            seed=seed,
            horizon=until,
            placement=placement or {},
            telemetry=telemetry,
        )
        return run_experiment(spec).trace

    def run_threads(
        self,
        duration: float,
        *,
        aru: Optional[AruConfig] = None,
        seed: int = 0,
        compute_mode: str = "sleep",
    ) -> TraceRecorder:
        """Run on real OS threads for ``duration`` wall seconds.

        .. deprecated::
            Use ``repro.run_experiment(ExperimentSpec(app=app,
            backend="threads"))`` — backends are picked by name through
            the registry now, and the facade returns the full
            :class:`~repro.experiment.RunResult`.
        """
        import warnings

        warnings.warn(
            "StampedeApp.run_threads() is deprecated; use "
            "repro.run_experiment(ExperimentSpec(app=app, "
            "backend='threads')) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.experiment import ExperimentSpec, run_experiment

        spec = ExperimentSpec(
            app=self.graph,
            policy=aru or aru_disabled(),
            seed=seed,
            horizon=duration,
            backend="threads",
            backend_options={"compute_mode": compute_mode},
        )
        return run_experiment(spec).trace
