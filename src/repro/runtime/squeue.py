"""Stampede queues: FIFO, destructive-read buffers.

Queues complement channels (§1: "abstractions, such as Channels and
Queues"): a queue delivers every item exactly once, in arrival order, to
whichever consumer pops first (work-queue semantics). No skipping happens,
so queues create no GC problem: an item is freed when the consumer that
popped it releases it at the end of its iteration.

Feedback piggybacking works exactly as for channels: gets carry the
consumer's summary into the queue's
:class:`~repro.control.propagation.FeedbackEndpoint`; puts return the
queue's compressed summary to the producer.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.aru.summary import BufferAruState
from repro.control.propagation import FeedbackEndpoint
from repro.errors import SimulationError
from repro.obs.hub import NULL_HUB
from repro.runtime.connection import InputConnection, OutputConnection
from repro.runtime.item import Item, ItemView
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import WaitQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node
    from repro.metrics.recorder import TraceRecorder


class SQueue:
    """One named FIFO queue placed on a cluster node."""

    kind = "queue"

    def __init__(
        self,
        engine: Engine,
        name: str,
        node: "Node",
        recorder: "TraceRecorder",
        aru_state: Optional[BufferAruState] = None,
        capacity: Optional[int] = None,
        feedback: Optional[FeedbackEndpoint] = None,
        obs=NULL_HUB,
    ) -> None:
        self.engine = engine
        self.name = name
        self.node = node
        self.recorder = recorder
        self.obs = obs
        # Fixed-slot telemetry handles, resolved once here instead of a
        # (name, labels) registry lookup per operation (ISSUE 7). With
        # telemetry or metrics off these are shared no-ops. Queues
        # self-manage storage, hence the fixed "queue" collector label.
        self._put_h = obs.put_handle(name, self.kind)
        self._free_h = obs.free_handle(name, self.kind, "queue")
        # ``aru_state`` is the pre-control-plane spelling: wrap it into
        # an endpoint so hand-built harnesses keep working.
        if feedback is None and aru_state is not None:
            feedback = FeedbackEndpoint(aru_state)
        self.feedback = feedback
        self.capacity = capacity
        self._fifo: Deque[Item] = deque()
        self.in_conns: List[InputConnection] = []
        self.out_conns: List[OutputConnection] = []
        self._getters = WaitQueue(engine, name=f"{name}.get")
        self._putters = WaitQueue(engine, name=f"{name}.room")
        self.total_puts = 0
        self.total_gets = 0
        self.total_frees = 0

    # -- registration ------------------------------------------------------
    def register_producer(self, thread: str) -> OutputConnection:
        conn = OutputConnection(thread=thread, buffer=self.name)
        self.out_conns.append(conn)
        return conn

    def register_consumer(self, thread: str) -> InputConnection:
        conn = InputConnection(buffer=self.name, thread=thread)
        obs = self.obs
        if obs.enabled:
            conn.get_h = obs.get_handle(self.name, self.kind, thread)
            conn.skip_h = obs.skip_handle(self.name, thread)
        self.in_conns.append(conn)
        return conn

    def unregister_producer(self, conn: OutputConnection) -> None:
        """Detach a producer connection (thread restart/teardown)."""
        try:
            self.out_conns.remove(conn)
        except ValueError:
            raise SimulationError(
                f"producer {conn.thread!r} not registered on {self.name!r}"
            ) from None

    def unregister_consumer(self, conn: InputConnection) -> None:
        """Detach a consumer connection, evicting its backwardSTP slot."""
        try:
            self.in_conns.remove(conn)
        except ValueError:
            raise SimulationError(
                f"consumer {conn.thread!r} not registered on {self.name!r}"
            ) from None
        if self.feedback is not None:
            self.feedback.detach(conn.conn_id)

    # -- introspection ------------------------------------------------------
    @property
    def aru(self) -> Optional[BufferAruState]:
        """The queue's ARU state, when feedback propagation is wired."""
        return self.feedback.state if self.feedback is not None else None

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def bytes_held(self) -> int:
        return sum(item.size for item in self._fifo)

    # -- put side ----------------------------------------------------------
    def has_room(self) -> bool:
        return self.capacity is None or len(self._fifo) < self.capacity

    def wait_for_room(self) -> Event:
        return self._putters.wait(lambda: self.has_room() or None)

    def commit_put(self, conn: OutputConnection, item: Item, t: float) -> Optional[float]:
        """Append ``item``; returns the queue's summary-STP (ARU feedback)."""
        if not self.has_room():
            raise SimulationError(f"commit_put on full queue {self.name!r}")
        self._fifo.append(item)
        self.total_puts += 1
        conn.puts += 1
        self.node.alloc(item.size)
        self.recorder.on_alloc(
            item_id=item.item_id,
            channel=self.name,
            node=self.node.name,
            ts=item.ts,
            size=item.size,
            producer=item.producer,
            parents=item.parents,
            t=t,
        )
        obs = self.obs
        if obs.enabled:
            self._put_h.add(1.0, item.size)
            if obs.spans_on:
                obs.span_put(self.name, item, t)
        self._getters.notify_all()
        return self.feedback.advertise() if self.feedback is not None else None

    # -- get side ----------------------------------------------------------
    def request_get(self, conn: InputConnection, request: object = None) -> Event:
        """Event firing when the queue is non-empty (``request`` ignored —
        queues are strictly FIFO)."""
        if conn not in self.in_conns:
            raise SimulationError(f"unregistered consumer on {self.name!r}")
        return self._getters.wait(lambda: bool(self._fifo) or None)

    def try_match(self, conn: InputConnection, request: object = None) -> bool:
        return bool(self._fifo)

    def cancel_get(self, event: Event) -> None:
        """Withdraw a pending get request (timed-get expiry)."""
        self._getters.cancel(event)

    def commit_get(
        self,
        conn: InputConnection,
        request: object,
        t: float,
        consumer_summary: Optional[float] = None,
    ) -> ItemView:
        """Pop the head item (removed from the queue, freed at release)."""
        if not self._fifo:
            raise SimulationError(f"commit_get on empty queue {self.name!r}")
        item = self._fifo.popleft()
        conn.last_got = max(conn.last_got, item.ts)
        conn.gets += 1
        self.total_gets += 1
        item.acquire()
        self.recorder.on_get(item.item_id, conn.conn_id, conn.thread, t)
        obs = self.obs
        if obs.enabled:
            conn.get_h.inc()
            if obs.spans_on:
                obs.span_get(item, conn.thread, t)
        if self.feedback is not None and consumer_summary is not None:
            self.feedback.receive(conn.conn_id, consumer_summary)
        if self.capacity is not None:
            self._putters.notify_all()
        return ItemView(item, self.name)

    def release(self, item: Item, t: float) -> None:
        """Consumer finished with a popped item — storage is reclaimed."""
        item.release()
        if item.refcount == 0 and not item.freed:
            item.freed = True
            self.total_frees += 1
            self.node.free(item.size)
            self.recorder.on_free(item.item_id, t)
            obs = self.obs
            if obs.enabled:
                self._free_h.add(1.0, item.size)
                if obs.spans_on:
                    obs.span_free(item, t)

    def maybe_collect(self, t: float) -> int:
        """Queues self-manage storage; nothing for a GC to do."""
        return 0

    def drain(self, t: float) -> int:
        """Reclaim all queued storage (tenant departure / teardown).

        Queued items are by construction unreferenced (a pop removes the
        item from the FIFO), so every one frees immediately. Returns the
        number of items freed.
        """
        freed = 0
        while self._fifo:
            item = self._fifo.popleft()
            if item.freed:  # pragma: no cover - defensive
                continue
            item.freed = True
            self.total_frees += 1
            freed += 1
            self.node.free(item.size)
            self.recorder.on_free(item.item_id, t)
            obs = self.obs
            if obs.enabled:
                self._free_h.add(1.0, item.size)
                if obs.spans_on:
                    obs.span_free(item, t)
        if self.capacity is not None:
            self._putters.notify_all()
        return freed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SQueue {self.name!r} depth={len(self._fifo)} on {self.node.name}>"
