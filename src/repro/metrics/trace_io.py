"""Trace persistence: save a run's statistics, re-analyze later.

The paper's measurement flow records statistics during the run and
derives every metric afterwards in "a postmortem analysis program". This
module makes that split concrete: :func:`save_trace` serializes a
finalized :class:`~repro.metrics.recorder.TraceRecorder` to a compact
JSON document, :func:`load_trace` reconstructs an equivalent recorder so
the whole metrics stack (footprint, performance, postmortem, IGC) runs
unchanged on stored traces.

Format: one JSON object, schema-versioned. Floats are kept at full
precision (``repr`` round-trip), so analysis results match exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import TraceError
from repro.metrics.events import ItemTrace, IterationTrace, StpSample, Touch
from repro.metrics.recorder import TraceRecorder

#: Bump on any incompatible schema change.
SCHEMA_VERSION = 1


def trace_to_dict(recorder: TraceRecorder) -> dict:
    """Serialize a finalized recorder to plain Python data."""
    if recorder.t_end is None:
        raise TraceError("finalize the recorder before saving")
    return {
        "schema": SCHEMA_VERSION,
        "t_start": recorder.t_start,
        "t_end": recorder.t_end,
        "items": [
            {
                "id": it.item_id,
                "channel": it.channel,
                "node": it.node,
                "ts": it.ts,
                "size": it.size,
                "producer": it.producer,
                "parents": list(it.parents),
                "t_alloc": it.t_alloc,
                "t_free": it.t_free,
                "gets": [[t.conn_id, t.consumer, t.t] for t in it.gets],
                "skips": [[t.conn_id, t.consumer, t.t] for t in it.skips],
            }
            for it in recorder.items.values()
        ],
        "iterations": [
            {
                "thread": it.thread,
                "index": it.index,
                "t_start": it.t_start,
                "t_end": it.t_end,
                "compute": it.compute,
                "blocked": it.blocked,
                "slept": it.slept,
                "inputs": list(it.inputs),
                "outputs": list(it.outputs),
                "is_sink": it.is_sink,
            }
            for it in recorder.iterations
        ],
        "stp_samples": [
            {
                "thread": s.thread,
                "t": s.t,
                "current_stp": s.current_stp,
                "summary": s.summary,
                "throttle_target": s.throttle_target,
                "slept": s.slept,
            }
            for s in recorder.stp_samples
        ],
    }


def trace_from_dict(data: dict) -> TraceRecorder:
    """Rebuild a recorder from :func:`trace_to_dict` output."""
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise TraceError(
            f"unsupported trace schema {schema!r} (expected {SCHEMA_VERSION})"
        )
    recorder = TraceRecorder()
    recorder.t_start = float(data["t_start"])
    for entry in data["items"]:
        trace = ItemTrace(
            item_id=entry["id"],
            channel=entry["channel"],
            node=entry["node"],
            ts=entry["ts"],
            size=entry["size"],
            producer=entry["producer"],
            parents=tuple(entry["parents"]),
            t_alloc=entry["t_alloc"],
            t_free=entry["t_free"],
            gets=[Touch(*t) for t in entry["gets"]],
            skips=[Touch(*t) for t in entry["skips"]],
        )
        if trace.item_id in recorder.items:
            raise TraceError(f"duplicate item id {trace.item_id} in trace")
        recorder.items[trace.item_id] = trace
    for entry in data["iterations"]:
        recorder.iterations.append(
            IterationTrace(
                thread=entry["thread"],
                index=entry["index"],
                t_start=entry["t_start"],
                t_end=entry["t_end"],
                compute=entry["compute"],
                blocked=entry["blocked"],
                slept=entry["slept"],
                inputs=tuple(entry["inputs"]),
                outputs=tuple(entry["outputs"]),
                is_sink=entry["is_sink"],
            )
        )
    for entry in data.get("stp_samples", []):
        recorder.stp_samples.append(
            StpSample(
                thread=entry["thread"],
                t=entry["t"],
                current_stp=entry["current_stp"],
                summary=entry["summary"],
                throttle_target=entry["throttle_target"],
                slept=entry["slept"],
            )
        )
    recorder.finalize(float(data["t_end"]))
    return recorder


def rebase_trace(recorder: TraceRecorder, t_start: float = 0.0) -> TraceRecorder:
    """Shift every timestamp so the trace starts at ``t_start``.

    Traces recorded by live backends carry wall-clock bases (each
    process rebases its clock at a different instant), so two otherwise
    comparable traces can sit on disjoint time axes — and time-ordered
    analyses (footprint timelines, ``repro compare``) either crash or
    silently mislead. Rebasing is a pure translation: every duration,
    rate, and ordering is preserved. Mutates and returns ``recorder``.
    """
    if recorder.t_end is None:
        raise TraceError("finalize the recorder before rebasing")
    delta = float(t_start) - recorder.t_start
    if delta == 0.0:
        return recorder
    recorder.t_start += delta
    recorder.t_end += delta
    for item in recorder.items.values():
        item.t_alloc += delta
        if item.t_free is not None:
            item.t_free += delta
        for touch in item.gets:
            touch.t += delta
        for touch in item.skips:
            touch.t += delta
    for it in recorder.iterations:
        it.t_start += delta
        it.t_end += delta
    for s in recorder.stp_samples:
        s.t += delta
    return recorder


def merge_traces(recorders) -> TraceRecorder:
    """Merge per-worker traces (shared time base) into one recorder.

    The distributed launcher collects one finalized trace per worker
    process; item ids are disjoint by construction (each worker seeds
    its id counter in a private range) and all workers share the
    launcher's epoch, so merging is a union: items keyed by id,
    iterations and STP samples re-sorted into completion order,
    ``t_end`` the latest worker's. Per-thread iteration indexes are
    renumbered in that order.
    """
    recorders = list(recorders)
    if not recorders:
        raise TraceError("merge_traces needs at least one trace")
    merged = TraceRecorder()
    merged.t_start = min(r.t_start for r in recorders)
    t_end = None
    iterations: list = []
    for rec in recorders:
        if rec.t_end is None:
            raise TraceError("finalize every worker trace before merging")
        t_end = rec.t_end if t_end is None else max(t_end, rec.t_end)
        for item_id, item in rec.items.items():
            if item_id in merged.items:
                raise TraceError(
                    f"duplicate item id {item_id} across worker traces"
                )
            merged.items[item_id] = item
        iterations.extend(rec.iterations)
        merged.stp_samples.extend(rec.stp_samples)
    iterations.sort(key=lambda it: (it.t_end, it.thread, it.index))
    counters: dict = {}
    for it in iterations:
        it.index = counters.get(it.thread, 0)
        counters[it.thread] = it.index + 1
    merged.iterations.extend(iterations)
    merged.stp_samples.sort(key=lambda s: (s.t, s.thread))
    merged.finalize(t_end)
    return merged


def save_trace(recorder: TraceRecorder, path: Union[str, Path]) -> None:
    """Write a finalized trace to ``path`` as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(recorder)))


def load_trace(path: Union[str, Path]) -> TraceRecorder:
    """Read a trace written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))
