"""Trace persistence: save a run's statistics, re-analyze later.

The paper's measurement flow records statistics during the run and
derives every metric afterwards in "a postmortem analysis program". This
module makes that split concrete: :func:`save_trace` serializes a
finalized :class:`~repro.metrics.recorder.TraceRecorder` to a compact
JSON document, :func:`load_trace` reconstructs an equivalent recorder so
the whole metrics stack (footprint, performance, postmortem, IGC) runs
unchanged on stored traces.

Format: one JSON object, schema-versioned. Floats are kept at full
precision (``repr`` round-trip), so analysis results match exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import TraceError
from repro.metrics.events import ItemTrace, IterationTrace, StpSample, Touch
from repro.metrics.recorder import TraceRecorder

#: Bump on any incompatible schema change.
SCHEMA_VERSION = 1


def trace_to_dict(recorder: TraceRecorder) -> dict:
    """Serialize a finalized recorder to plain Python data."""
    if recorder.t_end is None:
        raise TraceError("finalize the recorder before saving")
    return {
        "schema": SCHEMA_VERSION,
        "t_start": recorder.t_start,
        "t_end": recorder.t_end,
        "items": [
            {
                "id": it.item_id,
                "channel": it.channel,
                "node": it.node,
                "ts": it.ts,
                "size": it.size,
                "producer": it.producer,
                "parents": list(it.parents),
                "t_alloc": it.t_alloc,
                "t_free": it.t_free,
                "gets": [[t.conn_id, t.consumer, t.t] for t in it.gets],
                "skips": [[t.conn_id, t.consumer, t.t] for t in it.skips],
            }
            for it in recorder.items.values()
        ],
        "iterations": [
            {
                "thread": it.thread,
                "index": it.index,
                "t_start": it.t_start,
                "t_end": it.t_end,
                "compute": it.compute,
                "blocked": it.blocked,
                "slept": it.slept,
                "inputs": list(it.inputs),
                "outputs": list(it.outputs),
                "is_sink": it.is_sink,
            }
            for it in recorder.iterations
        ],
        "stp_samples": [
            {
                "thread": s.thread,
                "t": s.t,
                "current_stp": s.current_stp,
                "summary": s.summary,
                "throttle_target": s.throttle_target,
                "slept": s.slept,
            }
            for s in recorder.stp_samples
        ],
    }


def trace_from_dict(data: dict) -> TraceRecorder:
    """Rebuild a recorder from :func:`trace_to_dict` output."""
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise TraceError(
            f"unsupported trace schema {schema!r} (expected {SCHEMA_VERSION})"
        )
    recorder = TraceRecorder()
    recorder.t_start = float(data["t_start"])
    for entry in data["items"]:
        trace = ItemTrace(
            item_id=entry["id"],
            channel=entry["channel"],
            node=entry["node"],
            ts=entry["ts"],
            size=entry["size"],
            producer=entry["producer"],
            parents=tuple(entry["parents"]),
            t_alloc=entry["t_alloc"],
            t_free=entry["t_free"],
            gets=[Touch(*t) for t in entry["gets"]],
            skips=[Touch(*t) for t in entry["skips"]],
        )
        if trace.item_id in recorder.items:
            raise TraceError(f"duplicate item id {trace.item_id} in trace")
        recorder.items[trace.item_id] = trace
    for entry in data["iterations"]:
        recorder.iterations.append(
            IterationTrace(
                thread=entry["thread"],
                index=entry["index"],
                t_start=entry["t_start"],
                t_end=entry["t_end"],
                compute=entry["compute"],
                blocked=entry["blocked"],
                slept=entry["slept"],
                inputs=tuple(entry["inputs"]),
                outputs=tuple(entry["outputs"]),
                is_sink=entry["is_sink"],
            )
        )
    for entry in data.get("stp_samples", []):
        recorder.stp_samples.append(
            StpSample(
                thread=entry["thread"],
                t=entry["t"],
                current_stp=entry["current_stp"],
                summary=entry["summary"],
                throttle_target=entry["throttle_target"],
                slept=entry["slept"],
            )
        )
    recorder.finalize(float(data["t_end"]))
    return recorder


def save_trace(recorder: TraceRecorder, path: Union[str, Path]) -> None:
    """Write a finalized trace to ``path`` as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(recorder)))


def load_trace(path: Union[str, Path]) -> TraceRecorder:
    """Read a trace written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))
