"""Trace record types for the measurement infrastructure.

The paper (§4): *"Each interaction of an item with the operating system
(e.g., allocation, deallocation, etc.) is recorded. Items that do not make
it to the end of the pipeline are marked to differentiate between wasted
and successful memory and computations. A postmortem analysis program uses
these statistics to derive the metrics of interest."*

We keep two structured record kinds instead of a flat event log:

* :class:`ItemTrace` — one per item: allocation, size, placement,
  lineage (the items consumed by the iteration that produced it), every
  get/skip touch, and the free time.
* :class:`IterationTrace` — one per completed thread-loop iteration:
  timing decomposition (compute / blocked / throttle-slept), consumed
  inputs and produced outputs.

These two are sufficient to derive every metric in the paper's evaluation
(memory footprint mean/σ, wasted memory %, wasted computation %, latency,
throughput, jitter, and the IGC bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Touch:
    """One consumer interaction with an item (a get or a skip)."""

    conn_id: int
    consumer: str
    t: float


@dataclass
class ItemTrace:
    """Lifetime record of one timestamped item."""

    item_id: int
    channel: str
    node: str
    ts: int
    size: int
    producer: str
    parents: Tuple[int, ...]
    t_alloc: float
    t_free: Optional[float] = None
    gets: List[Touch] = field(default_factory=list)
    skips: List[Touch] = field(default_factory=list)

    @property
    def freed(self) -> bool:
        return self.t_free is not None

    @property
    def ever_got(self) -> bool:
        return bool(self.gets)

    def last_get_time(self) -> Optional[float]:
        """Time of the final get, or None if never consumed."""
        if not self.gets:
            return None
        return max(touch.t for touch in self.gets)

    def lifetime(self, horizon: float) -> float:
        """Seconds the item occupied memory, up to ``horizon`` if unfreed."""
        end = self.t_free if self.t_free is not None else horizon
        return max(0.0, end - self.t_alloc)


@dataclass
class IterationTrace:
    """Timing + data-flow record of one thread-loop iteration."""

    thread: str
    index: int
    t_start: float
    t_end: float
    compute: float
    blocked: float
    slept: float
    inputs: Tuple[int, ...]
    outputs: Tuple[int, ...]
    is_sink: bool = False

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class StpSample:
    """One feedback-loop sample: a thread's STP and summary at a sync point.

    Not needed for the paper's tables; recorded (cheaply) to let ablation
    benches and examples plot the control signal itself.
    """

    thread: str
    t: float
    current_stp: float
    summary: Optional[float]
    throttle_target: Optional[float]
    slept: float
