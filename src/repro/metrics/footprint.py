"""Memory-footprint statistics — the paper's §4 formulas.

Mean footprint:  ``MU_mu = sum(MU_(t_i+1) * (t_(i+1) - t_i)) / (t_N - t_0)``
Std deviation:   ``MU_sigma = sqrt(sum((MU_mu - MU_(t_i+1))^2 * dt) / (t_N - t_0))``

i.e. the time-weighted mean and deviation of the step function formed by
total channel-held bytes over time. :class:`Timeline` materializes that
step function from item traces (alloc/free intervals) and computes the
statistics exactly (no sampling error).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

import numpy as np

from repro.metrics.events import ItemTrace


class Timeline:
    """A right-continuous step function ``bytes(t)`` on ``[t0, t1]``.

    ``times`` are the breakpoints (including ``t0`` and ``t1``); ``values``
    has one entry per interval ``[times[i], times[i+1])``.
    """

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        if len(times) != len(values) + 1:
            raise ValueError("need len(times) == len(values) + 1")
        if len(values) == 0:
            raise ValueError("empty timeline")
        if np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        self.times = times
        self.values = values

    def __eq__(self, other: object) -> bool:
        """Exact (bitwise) equality of breakpoints and values.

        Needed so experiment results — which embed timelines — support
        the differential determinism checks of the sweep runner.
        """
        if not isinstance(other, Timeline):
            return NotImplemented
        return (np.array_equal(self.times, other.times)
                and np.array_equal(self.values, other.values))

    __hash__ = None  # mutable arrays; equality is by content

    # -- statistics ----------------------------------------------------------
    @property
    def duration(self) -> float:
        return float(self.times[-1] - self.times[0])

    def integral(self) -> float:
        """Byte-seconds under the curve."""
        return float(np.sum(self.values * np.diff(self.times)))

    def mean(self) -> float:
        """Time-weighted mean occupancy (the paper's ``MU_mu``)."""
        if self.duration == 0:
            return float(self.values[0])
        return self.integral() / self.duration

    def std(self) -> float:
        """Time-weighted standard deviation (the paper's ``MU_sigma``)."""
        if self.duration == 0:
            return 0.0
        mu = self.mean()
        var = float(np.sum((self.values - mu) ** 2 * np.diff(self.times))) / self.duration
        return float(np.sqrt(max(0.0, var)))

    def peak(self) -> float:
        return float(np.max(self.values))

    def at(self, t: float) -> float:
        """Value of the step function at time ``t``."""
        if t < self.times[0] or t > self.times[-1]:
            raise ValueError(f"t={t} outside [{self.times[0]}, {self.times[-1]}]")
        idx = int(np.searchsorted(self.times, t, side="right") - 1)
        idx = min(idx, len(self.values) - 1)
        return float(self.values[idx])

    def sample(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """``n`` evenly spaced (t, bytes) samples, for plots/ASCII figures."""
        if n < 2:
            raise ValueError("need n >= 2 samples")
        ts = np.linspace(self.times[0], self.times[-1], n)
        vals = np.array([self.at(t) for t in ts])
        return ts, vals


def build_timeline(
    items: Iterable[ItemTrace],
    t0: float,
    t1: float,
    predicate: Optional[Callable[[ItemTrace], bool]] = None,
    end_override: Optional[Callable[[ItemTrace], Optional[float]]] = None,
) -> Timeline:
    """Step function of total bytes held by ``items`` over ``[t0, t1]``.

    Parameters
    ----------
    predicate:
        Keep only items for which it returns True (e.g. one channel, or
        only successful items for the IGC bound).
    end_override:
        Map an item to a custom lifetime end (e.g. last-get time for IGC);
        ``None`` falls back to ``t_free`` (or the horizon ``t1``).
    """
    if predicate is not None:
        items = [item for item in items if predicate(item)]
    elif not isinstance(items, (list, tuple)):
        items = list(items)
    if not items:
        if t1 < t0:
            raise ValueError(f"horizon t1={t1} before t0={t0}")
        return Timeline(np.array([t0, t1]), np.array([0.0]))
    starts = np.asarray([item.t_alloc for item in items], dtype=float)
    if end_override is not None:
        ends_list = []
        for item in items:
            end = end_override(item)
            if end is None:
                end = item.t_free if item.t_free is not None else t1
            ends_list.append(end)
        ends = np.asarray(ends_list, dtype=float)
    else:
        ends = np.asarray(
            [t1 if item.t_free is None else item.t_free for item in items],
            dtype=float,
        )
    sizes = np.asarray([item.size for item in items], dtype=float)
    return timeline_from_intervals(starts, ends, sizes, t0, t1)


def timeline_from_intervals(
    starts: np.ndarray,
    ends: np.ndarray,
    sizes: np.ndarray,
    t0: float,
    t1: float,
) -> Timeline:
    """Step function of total bytes held by raw ``[start, end)`` intervals.

    The array-level core of :func:`build_timeline`, exposed so callers
    that already hold the interval arrays (the postmortem analyzer caches
    them per trace) skip re-extracting item attributes. Input arrays are
    not modified.

    Sweep-line over (time, ±size) deltas, vectorized. ``np.cumsum``
    accumulates left-to-right exactly like the reference Python loop
    (unlike ``np.sum``, which pairs), and the stable argsort matches a
    stable list sort keyed on time — so the resulting step function is
    bit-for-bit identical to the scalar implementation (pinned by
    tests/metrics/test_footprint.py::test_build_timeline_matches_reference).
    """
    if t1 < t0:
        raise ValueError(f"horizon t1={t1} before t0={t0}")
    starts = np.maximum(starts, t0)
    ends = np.minimum(ends, t1)
    alive = ends > starts
    if not alive.all():
        starts = starts[alive]
        ends = ends[alive]
        sizes = sizes[alive]
    n = len(starts)
    if n == 0:
        return Timeline(np.array([t0, t1]), np.array([0.0]))
    # Interleave (start, +size), (end, -size) in item order — the exact
    # sequence the reference loop emitted, so the stable sort's tie-break
    # order is unchanged.
    times = np.empty(2 * n)
    times[0::2] = starts
    times[1::2] = ends
    deltas_arr = np.empty(2 * n)
    deltas_arr[0::2] = sizes
    deltas_arr[1::2] = -sizes
    order = np.argsort(times, kind="stable")
    times = times[order]
    levels = np.cumsum(deltas_arr[order])
    # Keep the last entry of each run of equal times: the level of the
    # interval that *starts* there, after all deltas at that instant.
    keep = np.empty(len(times), dtype=bool)
    keep[:-1] = times[1:] != times[:-1]
    keep[-1] = True
    bp_times = times[keep]
    bp_levels = levels[keep]
    if bp_times[0] == t0:
        head_level = bp_levels[0]
        bp_times = bp_times[1:]
        bp_levels = bp_levels[1:]
    else:
        head_level = 0.0
    if len(bp_times) and bp_times[-1] == t1:
        out_times = np.concatenate(((t0,), bp_times))
        out_values = np.concatenate(((head_level,), bp_levels[:-1]))
    else:
        out_times = np.concatenate(((t0,), bp_times, (t1,)))
        out_values = np.concatenate(((head_level,), bp_levels))
    return Timeline(out_times, out_values)


def byte_seconds(items: Iterable[ItemTrace], horizon: float,
                 predicate: Optional[Callable[[ItemTrace], bool]] = None) -> float:
    """Total ``size * lifetime`` over the selected items."""
    total = 0.0
    for item in items:
        if predicate is not None and not predicate(item):
            continue
        end = item.t_free
        if end is None:
            end = horizon
        dt = end - item.t_alloc
        if dt > 0.0:
            total += item.size * dt
    return total
