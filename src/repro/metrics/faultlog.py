"""Fault-event bookkeeping: injected / detected / recovered timelines.

The :class:`FaultEventLog` is the measurement side of the fault subsystem
(:mod:`repro.faults`): the injector records every fault it applies
(*injected*) and every recovery action (*recovered*); the failure
detector reports *symptoms* — raw observations such as "thread X stopped
answering" — which the log matches against open fault records to stamp
*detected* times. Derived metrics:

* **detection latency** — ``t_detected - t_injected`` per fault;
* **recovery** — ``t_recovered`` per fault (explicit restore/restart
  faults and expiring fault windows both count);
* unmatched symptoms — observations with no scheduled cause, kept for
  the postmortem (collateral damage shows up here, e.g. the threads of a
  crashed node reported dead individually).

The log is plain data: it never touches the engine, so recording is
side-effect-free with respect to simulation determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Which fault kinds a given symptom can confirm. A symptom only stamps
#: ``t_detected`` on a record whose kind it names and whose target matches.
SYMPTOM_MATCHES: Dict[str, Tuple[str, ...]] = {
    "thread_dead": ("thread_crash",),
    "thread_stalled": ("thread_stall",),
    "thread_back": ("thread_restart",),
    "node_dead": ("node_crash",),
    "node_back": ("node_restart",),
    "link_down": ("link_partition",),
    "link_blocked": ("link_partition",),
    "link_slow": ("link_degrade",),
    "link_ok": ("link_restore",),
    "message_dropped": ("message_drop",),
}


@dataclass
class SymptomEvent:
    """One raw failure-detector observation."""

    symptom: str
    target: str
    t: float
    #: Who observed it (detector poll, or the thread that hit the error).
    source: str = ""
    #: Index of the fault record this symptom confirmed, if any.
    matched: Optional[int] = None


@dataclass
class FaultRecord:
    """Lifecycle of one injected fault."""

    index: int
    kind: str
    target: str
    t_injected: float
    detail: str = ""
    t_detected: Optional[float] = None
    detected_by: Optional[str] = None
    t_recovered: Optional[float] = None

    @property
    def detected(self) -> bool:
        return self.t_detected is not None

    @property
    def recovered(self) -> bool:
        return self.t_recovered is not None

    @property
    def detection_latency(self) -> Optional[float]:
        if self.t_detected is None:
            return None
        return self.t_detected - self.t_injected

    @property
    def recovery_latency(self) -> Optional[float]:
        if self.t_recovered is None:
            return None
        return self.t_recovered - self.t_injected


class FaultEventLog:
    """Chronological record of fault injections, detections, recoveries."""

    def __init__(self) -> None:
        self.records: List[FaultRecord] = []
        self.symptoms: List[SymptomEvent] = []

    # -- writers -----------------------------------------------------------
    def on_injected(self, kind: str, target: str, t: float,
                    detail: str = "") -> FaultRecord:
        record = FaultRecord(index=len(self.records), kind=kind,
                             target=target, t_injected=t, detail=detail)
        self.records.append(record)
        return record

    def on_symptom(self, symptom: str, target: str, t: float,
                   source: str = "") -> Optional[FaultRecord]:
        """Record an observation; returns the fault record it confirmed.

        Matches the earliest still-undetected record whose kind accepts
        this symptom and whose target is the observed one. Unmatched
        symptoms stay in :attr:`symptoms` for the postmortem.
        """
        event = SymptomEvent(symptom=symptom, target=target, t=t, source=source)
        self.symptoms.append(event)
        kinds = SYMPTOM_MATCHES.get(symptom, ())
        for record in self.records:
            if (record.kind in kinds and record.target == target
                    and not record.detected and t >= record.t_injected):
                record.t_detected = t
                record.detected_by = symptom
                event.matched = record.index
                return record
        return None

    def on_recovered(self, target: str, t: float,
                     kinds: Optional[Tuple[str, ...]] = None
                     ) -> List[FaultRecord]:
        """Mark every open fault on ``target`` (of the given kinds) recovered."""
        resolved = []
        for record in self.records:
            if (record.target == target and not record.recovered
                    and (kinds is None or record.kind in kinds)
                    and t >= record.t_injected):
                record.t_recovered = t
                resolved.append(record)
        return resolved

    # -- views -------------------------------------------------------------
    def undetected(self) -> List[FaultRecord]:
        return [r for r in self.records if not r.detected]

    def unmatched_symptoms(self) -> List[SymptomEvent]:
        return [s for s in self.symptoms if s.matched is None]

    def detection_latencies(self) -> Dict[int, float]:
        return {r.index: r.detection_latency for r in self.records
                if r.detection_latency is not None}

    def summary(self) -> Dict[str, int]:
        return {
            "injected": len(self.records),
            "detected": sum(1 for r in self.records if r.detected),
            "recovered": sum(1 for r in self.records if r.recovered),
            "symptoms": len(self.symptoms),
            "unmatched_symptoms": len(self.unmatched_symptoms()),
        }

    def __len__(self) -> int:
        return len(self.records)
