"""Postmortem analysis: success marking, wasted resources, the IGC bound.

The paper's measurement infrastructure marks "items that do not make it to
the end of the pipeline ... to differentiate between wasted and successful
memory and computations" (§4). We reconstruct that marking from lineage:

* an item is **delivered** if a sink iteration consumed it;
* an item is **successful** if it is delivered or is an ancestor (through
  lineage parents) of a delivered item — its data reached the end;
* everything else (skipped frames, masks computed for dropped frames, ...)
  is **wasted**.

From the marking:

* ``% wasted memory``   = wasted byte-seconds / total byte-seconds;
* ``% wasted computation`` = compute seconds of iterations none of whose
  outputs are successful / total compute seconds (source iterations whose
  frame got dropped are wasted; sink iterations are always useful);
* the **Ideal GC (IGC)** bound [Mandviwala et al., LCPC 2002]: the
  footprint of a hypothetical collector that (a) never stores unsuccessful
  items at all and (b) frees every successful item immediately after its
  last get — "eliminates all unnecessary computations and associated
  memory usage". Not realizable (requires future knowledge); computed here
  from the trace.

Every pass below is O(items + iterations): the per-channel breakdowns go
through the recorder's channel index instead of rescanning (and
re-filtering) the full item table per channel, and the byte-second sums
run as single inlined loops. Accumulation *order* is everywhere identical
to the naive implementation, so derived metrics are bit-for-bit stable
across the optimization (the sweep cache keys rely on this).
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, FrozenSet, Set, Tuple

import numpy as np

from repro.errors import TraceError
from repro.metrics.footprint import (
    Timeline,
    build_timeline,
    timeline_from_intervals,
)
from repro.metrics.recorder import TraceRecorder


class PostmortemAnalyzer:
    """Derives every resource metric of the paper from one run's trace."""

    def __init__(self, recorder: TraceRecorder) -> None:
        if recorder.t_end is None:
            raise TraceError("finalize the recorder before analysis")
        self.recorder = recorder
        self.horizon = recorder.t_end

    # -- success marking ----------------------------------------------------
    @cached_property
    def delivered_ids(self) -> FrozenSet[int]:
        """Items consumed directly by sink iterations."""
        out: Set[int] = set()
        for it in self.recorder.sink_iterations():
            out.update(it.inputs)
        return frozenset(out)

    @cached_property
    def successful_ids(self) -> FrozenSet[int]:
        """Delivered items plus their full lineage-ancestor closure."""
        items = self.recorder.items
        success: Set[int] = set(self.delivered_ids)
        stack = list(success)
        while stack:
            trace = items.get(stack.pop())
            if trace is None:
                continue
            for parent in trace.parents:
                if parent not in success:
                    success.add(parent)
                    stack.append(parent)
        return frozenset(success)

    def is_successful(self, item_id: int) -> bool:
        return item_id in self.successful_ids

    # -- cached per-item interval arrays ------------------------------------
    @cached_property
    def _item_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(t_alloc, t_free-or-horizon, size) arrays in allocation order.

        Extracted once per analyzer; every whole-trace footprint and
        byte-second aggregate below reads these instead of re-walking the
        item table.
        """
        items = list(self.recorder.items.values())
        horizon = self.horizon
        starts = np.asarray([item.t_alloc for item in items], dtype=float)
        ends = np.asarray(
            [horizon if item.t_free is None else item.t_free for item in items],
            dtype=float,
        )
        sizes = np.asarray([item.size for item in items], dtype=float)
        return starts, ends, sizes

    @cached_property
    def _success_mask(self) -> np.ndarray:
        """Row-aligned with :attr:`_item_arrays`: True iff item successful."""
        success = self.successful_ids
        return np.asarray(
            [item_id in success for item_id in self.recorder.items],
            dtype=bool,
        )

    # -- wasted memory ----------------------------------------------------
    @cached_property
    def total_byte_seconds(self) -> float:
        starts, ends, sizes = self._item_arrays
        if len(starts) == 0:
            return 0.0
        dts = ends - starts
        # cumsum (not np.sum, which pairs) keeps the accumulation order of
        # the reference ``total += size * dt`` loop — bit-for-bit stable.
        terms = (sizes * dts)[dts > 0.0]
        return float(np.cumsum(terms)[-1]) if len(terms) else 0.0

    @cached_property
    def wasted_byte_seconds(self) -> float:
        starts, ends, sizes = self._item_arrays
        if len(starts) == 0:
            return 0.0
        dts = ends - starts
        terms = (sizes * dts)[(dts > 0.0) & ~self._success_mask]
        return float(np.cumsum(terms)[-1]) if len(terms) else 0.0

    @property
    def wasted_memory_fraction(self) -> float:
        """The paper's "% of Mem. Wasted" (0..1)."""
        total = self.total_byte_seconds
        if total <= 0:
            return 0.0
        return self.wasted_byte_seconds / total

    # -- wasted computation -------------------------------------------------
    @cached_property
    def total_compute(self) -> float:
        return sum(it.compute for it in self.recorder.iterations)

    @cached_property
    def wasted_compute(self) -> float:
        success = self.successful_ids
        wasted = 0.0
        for it in self.recorder.iterations:
            if it.is_sink:
                continue  # displaying results is always useful work
            outputs = it.outputs
            if outputs:
                for o in outputs:
                    if o in success:
                        break
                else:
                    wasted += it.compute
        return wasted

    @property
    def wasted_computation_fraction(self) -> float:
        """The paper's "% of Comp. Wasted" (0..1)."""
        total = self.total_compute
        if total <= 0:
            return 0.0
        return self.wasted_compute / total

    # -- footprints -------------------------------------------------------
    def footprint(self, channel: str | None = None) -> Timeline:
        """Measured memory footprint (step function) of the run.

        Channel-restricted footprints read the recorder's channel index
        instead of filtering the full item table, so per-channel sweeps
        stay linear in the trace size overall.
        """
        if channel is None:
            starts, ends, sizes = self._item_arrays
            return timeline_from_intervals(
                starts, ends, sizes, self.recorder.t_start, self.horizon
            )
        items = self.recorder.items_of_channel(channel)
        return build_timeline(items, self.recorder.t_start, self.horizon)

    @cached_property
    def _last_use_end(self) -> Dict[int, float]:
        """item_id -> end time of the last iteration that consumed it.

        This is the earliest instant even an ideal collector could free a
        consumed item: the consumer is still computing on it until its
        iteration ends (the paper counts "items in various stages of
        processing").
        """
        out: Dict[int, float] = {}
        for it in self.recorder.iterations:
            for item_id in it.inputs:
                prev = out.get(item_id)
                if prev is None or it.t_end > prev:
                    out[item_id] = it.t_end
        return out

    def ideal_footprint(self) -> Timeline:
        """The IGC lower-bound footprint timeline.

        Successful items only, each alive from allocation to the end of
        the last iteration that consumed it (never-gotten items contribute
        nothing — IGC "eliminates all unnecessary computations and
        associated memory usage").
        """
        success = self.successful_ids
        last_use = self._last_use_end

        def end_at_last_use(item) -> float | None:
            end = last_use.get(item.item_id)
            if end is not None:
                return end
            return item.last_get_time()

        eligible = [
            item for item in self.recorder.items.values()
            if item.item_id in success and item.gets
        ]
        return build_timeline(
            eligible,
            self.recorder.t_start,
            self.horizon,
            end_override=end_at_last_use,
        )

    # -- per-thread waste attribution ---------------------------------------
    def thread_waste_report(self) -> Dict[str, dict]:
        """Per-thread compute decomposition: useful vs wasted seconds.

        Answers "which stage burned the most CPU on dropped data" — the
        actionable form of the fig.-7 aggregate. Sink iterations are
        always useful; an iteration with outputs is wasted iff none of
        its outputs reached the pipeline end (transitively).
        """
        success = self.successful_ids
        out: Dict[str, dict] = {}
        for it in self.recorder.iterations:
            entry = out.get(it.thread)
            if entry is None:
                entry = out[it.thread] = {
                    "compute": 0.0, "wasted": 0.0, "iterations": 0,
                    "wasted_iterations": 0,
                }
            entry["compute"] += it.compute
            entry["iterations"] += 1
            if it.is_sink:
                continue
            outputs = it.outputs
            if outputs:
                for o in outputs:
                    if o in success:
                        break
                else:
                    entry["wasted"] += it.compute
                    entry["wasted_iterations"] += 1
        for entry in out.values():
            entry["wasted_fraction"] = (
                entry["wasted"] / entry["compute"] if entry["compute"] else 0.0
            )
        return out

    # -- per-channel breakdown ---------------------------------------------
    def channel_report(self) -> Dict[str, dict]:
        """Per-channel puts/gets/skips/footprint summary (diagnostics)."""
        success = self.successful_ids
        out: Dict[str, dict] = {}
        for channel in self.recorder.channels():
            items = self.recorder.items_of_channel(channel)
            timeline = self.footprint(channel)
            out[channel] = {
                "items": len(items),
                "bytes_mean": timeline.mean(),
                "bytes_peak": timeline.peak(),
                "wasted_items": sum(
                    1 for item in items if item.item_id not in success
                ),
            }
        return out
