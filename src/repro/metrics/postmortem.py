"""Postmortem analysis: success marking, wasted resources, the IGC bound.

The paper's measurement infrastructure marks "items that do not make it to
the end of the pipeline ... to differentiate between wasted and successful
memory and computations" (§4). We reconstruct that marking from lineage:

* an item is **delivered** if a sink iteration consumed it;
* an item is **successful** if it is delivered or is an ancestor (through
  lineage parents) of a delivered item — its data reached the end;
* everything else (skipped frames, masks computed for dropped frames, ...)
  is **wasted**.

From the marking:

* ``% wasted memory``   = wasted byte-seconds / total byte-seconds;
* ``% wasted computation`` = compute seconds of iterations none of whose
  outputs are successful / total compute seconds (source iterations whose
  frame got dropped are wasted; sink iterations are always useful);
* the **Ideal GC (IGC)** bound [Mandviwala et al., LCPC 2002]: the
  footprint of a hypothetical collector that (a) never stores unsuccessful
  items at all and (b) frees every successful item immediately after its
  last get — "eliminates all unnecessary computations and associated
  memory usage". Not realizable (requires future knowledge); computed here
  from the trace.
"""

from __future__ import annotations

from collections import deque
from functools import cached_property
from typing import Dict, FrozenSet, List, Set

from repro.errors import TraceError
from repro.metrics.footprint import Timeline, build_timeline, byte_seconds
from repro.metrics.recorder import TraceRecorder


class PostmortemAnalyzer:
    """Derives every resource metric of the paper from one run's trace."""

    def __init__(self, recorder: TraceRecorder) -> None:
        if recorder.t_end is None:
            raise TraceError("finalize the recorder before analysis")
        self.recorder = recorder
        self.horizon = recorder.t_end

    # -- success marking ----------------------------------------------------
    @cached_property
    def delivered_ids(self) -> FrozenSet[int]:
        """Items consumed directly by sink iterations."""
        out: Set[int] = set()
        for it in self.recorder.sink_iterations():
            out.update(it.inputs)
        return frozenset(out)

    @cached_property
    def successful_ids(self) -> FrozenSet[int]:
        """Delivered items plus their full lineage-ancestor closure."""
        success: Set[int] = set()
        frontier = deque(self.delivered_ids)
        while frontier:
            item_id = frontier.popleft()
            if item_id in success:
                continue
            success.add(item_id)
            trace = self.recorder.items.get(item_id)
            if trace is not None:
                frontier.extend(p for p in trace.parents if p not in success)
        return frozenset(success)

    def is_successful(self, item_id: int) -> bool:
        return item_id in self.successful_ids

    # -- wasted memory ----------------------------------------------------
    @cached_property
    def total_byte_seconds(self) -> float:
        return byte_seconds(self.recorder.items.values(), self.horizon)

    @cached_property
    def wasted_byte_seconds(self) -> float:
        success = self.successful_ids
        return byte_seconds(
            self.recorder.items.values(),
            self.horizon,
            predicate=lambda item: item.item_id not in success,
        )

    @property
    def wasted_memory_fraction(self) -> float:
        """The paper's "% of Mem. Wasted" (0..1)."""
        total = self.total_byte_seconds
        if total <= 0:
            return 0.0
        return self.wasted_byte_seconds / total

    # -- wasted computation -------------------------------------------------
    @cached_property
    def total_compute(self) -> float:
        return sum(it.compute for it in self.recorder.iterations)

    @cached_property
    def wasted_compute(self) -> float:
        success = self.successful_ids
        wasted = 0.0
        for it in self.recorder.iterations:
            if it.is_sink:
                continue  # displaying results is always useful work
            if it.outputs and not any(o in success for o in it.outputs):
                wasted += it.compute
        return wasted

    @property
    def wasted_computation_fraction(self) -> float:
        """The paper's "% of Comp. Wasted" (0..1)."""
        total = self.total_compute
        if total <= 0:
            return 0.0
        return self.wasted_compute / total

    # -- footprints -------------------------------------------------------
    def footprint(self, channel: str | None = None) -> Timeline:
        """Measured memory footprint (step function) of the run."""
        predicate = None
        if channel is not None:
            predicate = lambda item: item.channel == channel
        return build_timeline(
            self.recorder.items.values(),
            self.recorder.t_start,
            self.horizon,
            predicate=predicate,
        )

    @cached_property
    def _last_use_end(self) -> Dict[int, float]:
        """item_id -> end time of the last iteration that consumed it.

        This is the earliest instant even an ideal collector could free a
        consumed item: the consumer is still computing on it until its
        iteration ends (the paper counts "items in various stages of
        processing").
        """
        out: Dict[int, float] = {}
        for it in self.recorder.iterations:
            for item_id in it.inputs:
                prev = out.get(item_id)
                if prev is None or it.t_end > prev:
                    out[item_id] = it.t_end
        return out

    def ideal_footprint(self) -> Timeline:
        """The IGC lower-bound footprint timeline.

        Successful items only, each alive from allocation to the end of
        the last iteration that consumed it (never-gotten items contribute
        nothing — IGC "eliminates all unnecessary computations and
        associated memory usage").
        """
        success = self.successful_ids
        last_use = self._last_use_end

        def end_at_last_use(item) -> float | None:
            end = last_use.get(item.item_id)
            if end is not None:
                return end
            return item.last_get_time()

        return build_timeline(
            self.recorder.items.values(),
            self.recorder.t_start,
            self.horizon,
            predicate=lambda item: item.item_id in success and item.ever_got,
            end_override=end_at_last_use,
        )

    # -- per-thread waste attribution ---------------------------------------
    def thread_waste_report(self) -> Dict[str, dict]:
        """Per-thread compute decomposition: useful vs wasted seconds.

        Answers "which stage burned the most CPU on dropped data" — the
        actionable form of the fig.-7 aggregate. Sink iterations are
        always useful; an iteration with outputs is wasted iff none of
        its outputs reached the pipeline end (transitively).
        """
        success = self.successful_ids
        out: Dict[str, dict] = {}
        for it in self.recorder.iterations:
            entry = out.setdefault(
                it.thread,
                {"compute": 0.0, "wasted": 0.0, "iterations": 0,
                 "wasted_iterations": 0},
            )
            entry["compute"] += it.compute
            entry["iterations"] += 1
            if it.is_sink:
                continue
            if it.outputs and not any(o in success for o in it.outputs):
                entry["wasted"] += it.compute
                entry["wasted_iterations"] += 1
        for entry in out.values():
            entry["wasted_fraction"] = (
                entry["wasted"] / entry["compute"] if entry["compute"] else 0.0
            )
        return out

    # -- per-channel breakdown ---------------------------------------------
    def channel_report(self) -> Dict[str, dict]:
        """Per-channel puts/gets/skips/footprint summary (diagnostics)."""
        out: Dict[str, dict] = {}
        for channel in self.recorder.channels():
            items = self.recorder.items_of_channel(channel)
            timeline = self.footprint(channel)
            success = self.successful_ids
            out[channel] = {
                "items": len(items),
                "bytes_mean": timeline.mean(),
                "bytes_peak": timeline.peak(),
                "wasted_items": sum(
                    1 for item in items if item.item_id not in success
                ),
            }
        return out
