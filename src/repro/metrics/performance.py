"""Application-performance metrics: latency, throughput, jitter (§4).

* **Latency** — "the time it takes an image to make a trip through the
  entire pipeline": for every item a sink thread consumes, the time from
  the creation of the **oldest** *source* item in its lineage to the end
  of the sink iteration that displayed it. The oldest ancestor is the
  frame whose data traversed the longest path (e.g. frame -> motion mask
  -> detection -> display), which is exactly "a trip through the entire
  pipeline"; anchoring on the newest ancestor would only measure the last
  hop.
* **Throughput** — "the number of successful frames processed every
  second": completed sink iterations per second.
* **Jitter** — "the standard deviation of the time difference between
  successive output frames": over sink-iteration completion times.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.metrics.recorder import TraceRecorder

#: Marks "anchor not resolvable in the forward pass" during the sweep.
_PENDING = object()


def _oldest_source_anchor(recorder: TraceRecorder) -> Dict[int, float]:
    """For every item, the creation time of its *oldest* source ancestor.

    A *source* item has no lineage parents (it was produced by a source
    thread from outside data — e.g. a camera frame). Lineage follows time,
    so in a live recorder the items dict (allocation order) already lists
    every parent before its children and one forward pass resolves all
    anchors; items whose parents appear later (possible in reloaded
    traces with reordered tables) fall back to an explicit memoized stack.
    Cycles are impossible.
    """
    anchors: Dict[int, float] = {}
    items = recorder.items
    deferred: List[int] = []
    for item_id, trace in items.items():
        parents = trace.parents
        if not parents:
            anchors[item_id] = trace.t_alloc
            continue
        best = None
        for p in parents:
            if p in anchors:
                a = anchors[p]
                if a is not None and (best is None or a < best):
                    best = a
            elif p in items:
                deferred.append(item_id)
                best = _PENDING
                break
            else:
                anchors[p] = None  # type: ignore[assignment]
        if best is not _PENDING:
            anchors[item_id] = best if best is not None else trace.t_alloc
    for item_id in deferred:
        if item_id in anchors:
            continue
        stack = [item_id]
        while stack:
            top = stack[-1]
            if top in anchors:
                stack.pop()
                continue
            trace = items.get(top)
            if trace is None:
                anchors[top] = None  # type: ignore[assignment]
                stack.pop()
                continue
            parents = trace.parents
            if not parents:
                anchors[top] = trace.t_alloc
                stack.pop()
                continue
            missing = [p for p in parents if p not in anchors]
            if missing:
                stack.extend(missing)
                continue
            valid = [anchors[p] for p in parents if anchors[p] is not None]
            anchors[top] = min(valid) if valid else trace.t_alloc
            stack.pop()
    return anchors


def latency_samples(recorder: TraceRecorder, warmup: float = 0.0) -> List[float]:
    """One latency sample per item consumed by a sink iteration.

    ``warmup`` discards sink iterations ending before that time — useful
    to exclude the feedback loop's cold start (before the first
    summary-STP has propagated, producers run unthrottled).
    """
    anchors = _oldest_source_anchor(recorder)
    samples: List[float] = []
    for it in recorder.sink_iterations():
        if it.t_end < warmup:
            continue
        for item_id in it.inputs:
            anchor = anchors.get(item_id)
            if anchor is not None:
                samples.append(it.t_end - anchor)
    return samples


def latency_samples_by_thread(
    recorder: TraceRecorder, warmup: float = 0.0
) -> Dict[str, List[float]]:
    """Latency samples grouped by the sink thread that delivered them.

    Multi-tenant runs have one sink per tenant (namespaced thread names),
    so grouping by ``it.thread`` yields per-tenant latency distributions
    from a single shared trace.
    """
    anchors = _oldest_source_anchor(recorder)
    grouped: Dict[str, List[float]] = {}
    for it in recorder.sink_iterations():
        if it.t_end < warmup:
            continue
        for item_id in it.inputs:
            anchor = anchors.get(item_id)
            if anchor is not None:
                grouped.setdefault(it.thread, []).append(it.t_end - anchor)
    return grouped


def latency_stats(recorder: TraceRecorder, warmup: float = 0.0) -> tuple:
    """(mean, std) of latency in seconds; (nan, nan) with no deliveries."""
    samples = latency_samples(recorder, warmup)
    if not samples:
        return float("nan"), float("nan")
    arr = np.asarray(samples)
    return float(arr.mean()), float(arr.std())


def latency_percentiles(
    recorder: TraceRecorder,
    percentiles=(50.0, 90.0, 99.0),
    warmup: float = 0.0,
) -> Dict[float, float]:
    """Latency percentiles in seconds (nan-valued with no deliveries)."""
    samples = latency_samples(recorder, warmup)
    if not samples:
        return {p: float("nan") for p in percentiles}
    arr = np.asarray(samples)
    return {p: float(np.percentile(arr, p)) for p in percentiles}


def throughput_fps(recorder: TraceRecorder, warmup: float = 0.0) -> float:
    """Completed sink iterations per second over the (post-warmup) run."""
    duration = recorder.duration - warmup
    if duration <= 0:
        return 0.0
    count = sum(1 for it in recorder.sink_iterations() if it.t_end >= warmup)
    return count / duration


def output_times(recorder: TraceRecorder, warmup: float = 0.0) -> List[float]:
    """Completion times of sink iterations (the output-frame instants)."""
    return sorted(
        it.t_end for it in recorder.sink_iterations() if it.t_end >= warmup
    )


def jitter(recorder: TraceRecorder, warmup: float = 0.0) -> float:
    """Std deviation of inter-output intervals (seconds); nan if < 3 outputs."""
    times = output_times(recorder, warmup)
    if len(times) < 3:
        return float("nan")
    return float(np.std(np.diff(times)))


def thread_utilization(recorder: TraceRecorder, thread: str) -> dict:
    """Decomposition of one thread's time: compute/blocked/slept fractions."""
    iters = recorder.iterations_of(thread)
    if not iters:
        return {"compute": 0.0, "blocked": 0.0, "slept": 0.0, "iterations": 0}
    span = iters[-1].t_end - iters[0].t_start
    if span <= 0:
        span = float("nan")
    return {
        "compute": sum(i.compute for i in iters) / span,
        "blocked": sum(i.blocked for i in iters) / span,
        "slept": sum(i.slept for i in iters) / span,
        "iterations": len(iters),
    }
