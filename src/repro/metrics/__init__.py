"""Measurement infrastructure and postmortem analysis (paper §4)."""

from repro.metrics.control import (
    ControlSeries,
    control_series,
    convergence_ratio,
    settling_time,
    smoothness,
    steady_state,
    throttle_duty,
    tracking_error,
)
from repro.metrics.events import ItemTrace, IterationTrace, StpSample, Touch
from repro.metrics.faultlog import (
    FaultEventLog,
    FaultRecord,
    SymptomEvent,
)
from repro.metrics.gantt import activity_buckets, gantt
from repro.metrics.footprint import Timeline, build_timeline, byte_seconds
from repro.metrics.performance import (
    jitter,
    latency_percentiles,
    latency_samples,
    latency_stats,
    output_times,
    thread_utilization,
    throughput_fps,
)
from repro.metrics.postmortem import PostmortemAnalyzer
from repro.metrics.recorder import TraceRecorder
from repro.metrics.trace_io import (
    load_trace,
    merge_traces,
    rebase_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)

__all__ = [
    "TraceRecorder",
    "ItemTrace",
    "IterationTrace",
    "StpSample",
    "Touch",
    "FaultEventLog",
    "FaultRecord",
    "SymptomEvent",
    "Timeline",
    "build_timeline",
    "byte_seconds",
    "PostmortemAnalyzer",
    "latency_samples",
    "latency_stats",
    "latency_percentiles",
    "throughput_fps",
    "output_times",
    "jitter",
    "thread_utilization",
    "gantt",
    "activity_buckets",
    "ControlSeries",
    "control_series",
    "settling_time",
    "tracking_error",
    "smoothness",
    "steady_state",
    "convergence_ratio",
    "throttle_duty",
    "save_trace",
    "load_trace",
    "rebase_trace",
    "merge_traces",
    "trace_to_dict",
    "trace_from_dict",
]
