"""ASCII Gantt rendering of per-thread activity.

Turns iteration traces into a time-bucketed activity chart: for each
thread, each column shows what dominated that time bucket —

* ``#`` computing, ``.`` blocked on input, ``z`` throttle-sleeping,
  `` `` idle/other.

One glance shows the paper's §5.2 story: without ARU every stage is busy
(much of it wasted); with ARU-max the upstream stages alternate compute
with throttle sleep while consumers stay saturated.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.metrics.recorder import TraceRecorder

#: Activity glyphs in priority order (dominant wins the cell).
GLYPHS = {"compute": "#", "blocked": ".", "slept": "z", "idle": " "}


def activity_buckets(
    recorder: TraceRecorder,
    thread: str,
    n_buckets: int,
    t0: float,
    t1: float,
) -> List[str]:
    """Dominant activity per bucket for one thread."""
    edges = np.linspace(t0, t1, n_buckets + 1)
    compute = np.zeros(n_buckets)
    blocked = np.zeros(n_buckets)
    slept = np.zeros(n_buckets)

    def smear(total: float, start: float, end: float, acc: np.ndarray) -> None:
        """Distribute `total` seconds uniformly over [start, end)."""
        if total <= 0 or end <= start:
            return
        lo = np.searchsorted(edges, start, side="right") - 1
        hi = np.searchsorted(edges, end, side="left")
        lo, hi = max(lo, 0), min(hi, n_buckets)
        for b in range(lo, hi):
            seg_lo = max(start, edges[b])
            seg_hi = min(end, edges[b + 1])
            if seg_hi > seg_lo:
                acc[b] += total * (seg_hi - seg_lo) / (end - start)

    for it in recorder.iterations_of(thread):
        smear(it.compute, it.t_start, it.t_end, compute)
        smear(it.blocked, it.t_start, it.t_end, blocked)
        smear(it.slept, it.t_start, it.t_end, slept)

    cells = []
    width = (t1 - t0) / n_buckets
    for b in range(n_buckets):
        values = {
            "compute": compute[b],
            "blocked": blocked[b],
            "slept": slept[b],
        }
        dominant = max(values, key=values.__getitem__)
        if values[dominant] < 0.05 * width:
            dominant = "idle"
        cells.append(GLYPHS[dominant])
    return cells


#: Fault-marker glyphs in priority order (injection beats detection
#: beats recovery when several land in one bucket).
FAULT_GLYPHS = (("injected", "!"), ("detected", "d"), ("recovered", "r"))


def fault_markers(fault_log, n_buckets: int, t0: float, t1: float) -> List[str]:
    """One marker cell per bucket for a fault-event timeline."""
    cells = [" "] * n_buckets
    rank = {" ": -1, "r": 0, "d": 1, "!": 2}
    span = t1 - t0
    if span <= 0:
        return cells

    def mark(t: Optional[float], glyph: str) -> None:
        if t is None or not t0 <= t <= t1:
            return
        b = min(int((t - t0) / span * n_buckets), n_buckets - 1)
        if rank[glyph] > rank[cells[b]]:
            cells[b] = glyph

    for record in fault_log.records:
        mark(record.t_injected, "!")
        mark(record.t_detected, "d")
        mark(record.t_recovered, "r")
    return cells


def gantt(
    recorder: TraceRecorder,
    threads: Optional[List[str]] = None,
    width: int = 72,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
    fault_log=None,
) -> str:
    """Multi-thread activity chart over ``[t0, t1]`` (defaults: whole run).

    With a :class:`~repro.metrics.faultlog.FaultEventLog` passed as
    ``fault_log``, an extra row marks fault injections (``!``),
    detections (``d``), and recoveries (``r``).
    """
    if recorder.t_end is None:
        raise ValueError("finalize the recorder before rendering")
    threads = threads or recorder.threads()
    if not threads:
        return "(no iterations recorded)"
    t0 = recorder.t_start if t0 is None else t0
    t1 = recorder.t_end if t1 is None else t1
    labels = list(threads) + (["faults"] if fault_log is not None else [])
    label_width = max(len(t) for t in labels) + 1
    lines = [
        f"activity: {GLYPHS['compute']}=compute {GLYPHS['blocked']}=blocked "
        f"{GLYPHS['slept']}=throttled ' '=idle   t=[{t0:.1f}s..{t1:.1f}s]"
    ]
    for thread in threads:
        cells = activity_buckets(recorder, thread, width, t0, t1)
        lines.append(f"{thread:<{label_width}}|{''.join(cells)}|")
    if fault_log is not None:
        cells = fault_markers(fault_log, width, t0, t1)
        lines.append(f"{'faults':<{label_width}}|{''.join(cells)}|")
        lines.append("faults: !=injected d=detected r=recovered")
    return "\n".join(lines)
