"""Control-signal analysis: the feedback loop seen as time series.

Extracts per-thread STP/summary/throttle-target series from a trace and
computes loop-quality statistics — settling time, steady-state tracking
error, signal smoothness, steady-state level. The throttle target is
recorded generically as *the policy's decision* at each sync point —
the compressed summary-STP for the paper's policy, the integrated
target for the PI policy, NaN for the inert ones — so every helper here
works for any :class:`~repro.control.policy.RatePolicy`. Used by the
filter/noise ablations, the PID-convergence bench, and the
adaptive-filters example to *look at* the control loop rather than only
its end effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TraceError
from repro.metrics.recorder import TraceRecorder


@dataclass
class ControlSeries:
    """Time series of one thread's feedback signals."""

    thread: str
    times: np.ndarray
    current_stp: np.ndarray
    summary: np.ndarray          # NaN where not yet known
    throttle_target: np.ndarray  # NaN where absent (non-source / no ARU)
    slept: np.ndarray

    def __len__(self) -> int:
        return len(self.times)


def control_series(recorder: TraceRecorder, thread: str) -> ControlSeries:
    """The feedback signals sampled at each of ``thread``'s sync points."""
    samples = [s for s in recorder.stp_samples if s.thread == thread]
    if not samples:
        raise TraceError(
            f"no STP samples for thread {thread!r} "
            "(was the run recorded with record_stp=True?)"
        )

    def col(getter) -> np.ndarray:
        return np.array(
            [v if (v := getter(s)) is not None else np.nan for s in samples],
            dtype=float,
        )

    return ControlSeries(
        thread=thread,
        times=np.array([s.t for s in samples]),
        current_stp=col(lambda s: s.current_stp),
        summary=col(lambda s: s.summary),
        throttle_target=col(lambda s: s.throttle_target),
        slept=np.array([s.slept for s in samples]),
    )


def settling_time(
    series: ControlSeries,
    target: float,
    tolerance: float = 0.10,
) -> Optional[float]:
    """Time at which the throttle target enters (and stays in) the
    ``±tolerance`` band around ``target``; None if it never settles."""
    values = series.throttle_target
    valid = ~np.isnan(values)
    if not valid.any():
        return None
    in_band = np.abs(values - target) <= tolerance * target
    in_band &= valid
    # last index that is out of band; settle after it
    out = np.where(~in_band)[0]
    if len(out) == 0:
        return float(series.times[0])
    last_out = out[-1]
    if last_out + 1 >= len(series.times):
        return None
    return float(series.times[last_out + 1])


def tracking_error(series: ControlSeries, target: float,
                   after: float = 0.0) -> float:
    """RMS relative error of the throttle target vs ``target`` after time
    ``after`` (nan when no data)."""
    mask = (series.times >= after) & ~np.isnan(series.throttle_target)
    if not mask.any():
        return float("nan")
    rel = (series.throttle_target[mask] - target) / target
    return float(np.sqrt(np.mean(rel**2)))


def smoothness(series: ControlSeries, after: float = 0.0) -> float:
    """Mean absolute relative step of the throttle target — the signal
    roughness the paper's noise discussion (§3.3.2) is about."""
    mask = (series.times >= after) & ~np.isnan(series.throttle_target)
    values = series.throttle_target[mask]
    if len(values) < 2:
        return float("nan")
    steps = np.abs(np.diff(values)) / np.maximum(values[:-1], 1e-12)
    return float(np.mean(steps))


def steady_state(series: ControlSeries, after: float = 0.0) -> float:
    """Mean policy decision (throttle target) after time ``after``.

    The natural "where did the loop converge to?" statistic: for the
    summary-STP policy it is the mean advertised sustainable period; for
    the PI policy it is the integrated target, so comparing the two on
    the same workload quantifies how closely the controller tracks the
    measured sustainable rate. NaN when the thread was never throttled
    in the window.
    """
    mask = (series.times >= after) & ~np.isnan(series.throttle_target)
    if not mask.any():
        return float("nan")
    return float(np.mean(series.throttle_target[mask]))


def convergence_ratio(
    series: ControlSeries,
    reference: float,
    after: float = 0.0,
) -> float:
    """Steady-state decision relative to a reference period.

    ``1.0`` means the policy settled exactly on ``reference`` (e.g. the
    sustainable period measured by the summary-STP policy on the same
    cell); the PID acceptance bench asserts ``|ratio - 1| <= 0.1``.
    """
    level = steady_state(series, after=after)
    if reference <= 0 or np.isnan(level):
        return float("nan")
    return float(level / reference)


def throttle_duty(series: ControlSeries, after: float = 0.0) -> float:
    """Fraction of sync points at which the thread actually slept."""
    mask = series.times >= after
    if not mask.any():
        return float("nan")
    return float(np.mean(series.slept[mask] > 0))
