"""In-memory trace recorder wired into the runtime.

One :class:`TraceRecorder` instance per run. The runtime calls the
``on_*`` hooks; the analysis modules (:mod:`repro.metrics.footprint`,
:mod:`repro.metrics.performance`, :mod:`repro.metrics.postmortem`) read
the accumulated structures after :meth:`finalize`.

The recorder is deliberately dumb — it never aggregates during the run,
so recording cost stays O(1) per event and analysis choices stay open.
The convenience views (:meth:`iterations_of`, :meth:`sink_iterations`,
:meth:`items_of_channel`, :meth:`threads`, :meth:`channels`) are backed
by lazily built indexes: the first call after new records arrive (or
after :meth:`finalize`) groups the trace once, and every later call is a
dictionary lookup. Analysis code may therefore call them freely inside
loops. The returned lists are the index's own storage — treat them as
read-only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import TraceError
from repro.metrics.events import ItemTrace, IterationTrace, StpSample, Touch

_EMPTY_ITERS: List[IterationTrace] = []
_EMPTY_ITEMS: List[ItemTrace] = []


class TraceRecorder:
    """Collects item and iteration traces for one simulation run."""

    def __init__(self, record_stp: bool = True) -> None:
        self.items: Dict[int, ItemTrace] = {}
        self.iterations: List[IterationTrace] = []
        self.stp_samples: List[StpSample] = []
        self.record_stp = record_stp
        self.t_start: float = 0.0
        self.t_end: Optional[float] = None
        self._iter_counters: Dict[str, int] = {}
        # -- lazily built view indexes --------------------------------
        #: Item traces in allocation order (the dict's insertion order),
        #: kept so the channel index can extend incrementally.
        self._item_seq: List[ItemTrace] = []
        self._by_thread: Optional[Dict[str, List[IterationTrace]]] = None
        self._sinks: Optional[List[IterationTrace]] = None
        self._iters_indexed = 0
        self._by_channel: Optional[Dict[str, List[ItemTrace]]] = None
        self._items_indexed = 0

    # -- item lifecycle ---------------------------------------------------
    def on_alloc(
        self,
        item_id: int,
        channel: str,
        node: str,
        ts: int,
        size: int,
        producer: str,
        parents: Tuple[int, ...],
        t: float,
    ) -> None:
        if item_id in self.items:
            raise TraceError(f"duplicate alloc for item {item_id}")
        trace = ItemTrace(
            item_id=item_id,
            channel=channel,
            node=node,
            ts=ts,
            size=size,
            producer=producer,
            parents=parents,
            t_alloc=t,
        )
        self.items[item_id] = trace
        self._item_seq.append(trace)

    def on_get(self, item_id: int, conn_id: int, consumer: str, t: float) -> None:
        self._item(item_id).gets.append(Touch(conn_id, consumer, t))

    def on_skip(self, item_id: int, conn_id: int, consumer: str, t: float) -> None:
        self._item(item_id).skips.append(Touch(conn_id, consumer, t))

    def on_free(self, item_id: int, t: float) -> None:
        trace = self._item(item_id)
        if trace.t_free is not None:
            raise TraceError(f"double free of item {item_id}")
        if t < trace.t_alloc:
            raise TraceError(f"free before alloc for item {item_id}")
        trace.t_free = t

    def _item(self, item_id: int) -> ItemTrace:
        trace = self.items.get(item_id)
        if trace is None:
            raise TraceError(f"unknown item {item_id}")
        return trace

    # -- iterations ---------------------------------------------------------
    def on_iteration(
        self,
        thread: str,
        t_start: float,
        t_end: float,
        compute: float,
        blocked: float,
        slept: float,
        inputs: Tuple[int, ...],
        outputs: Tuple[int, ...],
        is_sink: bool = False,
    ) -> None:
        index = self._iter_counters.get(thread, 0)
        self._iter_counters[thread] = index + 1
        self.iterations.append(
            IterationTrace(
                thread=thread,
                index=index,
                t_start=t_start,
                t_end=t_end,
                compute=compute,
                blocked=blocked,
                slept=slept,
                inputs=inputs,
                outputs=outputs,
                is_sink=is_sink,
            )
        )

    def on_stp(
        self,
        thread: str,
        t: float,
        current_stp: float,
        summary: Optional[float],
        throttle_target: Optional[float],
        slept: float,
    ) -> None:
        if self.record_stp:
            self.stp_samples.append(
                StpSample(thread, t, current_stp, summary, throttle_target, slept)
            )

    # -- run boundary ----------------------------------------------------
    def finalize(self, t_end: float) -> None:
        """Close the trace at simulated time ``t_end``.

        Unfreed items stay unfreed (their lifetime extends to the horizon
        in footprint computations) — matching a real run snapshot. Any
        view indexes built mid-run are dropped so postmortem analysis
        starts from a fresh, complete grouping.
        """
        if self.t_end is not None:
            raise TraceError("finalize() called twice")
        self.t_end = float(t_end)
        self._by_thread = None
        self._sinks = None
        self._iters_indexed = 0
        self._by_channel = None
        self._items_indexed = 0

    @property
    def duration(self) -> float:
        if self.t_end is None:
            raise TraceError("trace not finalized")
        return self.t_end - self.t_start

    # -- index maintenance ---------------------------------------------------
    def _iteration_index(self) -> Tuple[Dict[str, List[IterationTrace]],
                                        List[IterationTrace]]:
        by_thread = self._by_thread
        sinks = self._sinks
        if by_thread is None:
            by_thread = {}
            sinks = []
            self._by_thread = by_thread
            self._sinks = sinks
            self._iters_indexed = 0
        pos = self._iters_indexed
        iterations = self.iterations
        if pos < len(iterations):
            for it in iterations[pos:]:
                bucket = by_thread.get(it.thread)
                if bucket is None:
                    by_thread[it.thread] = [it]
                else:
                    bucket.append(it)
                if it.is_sink:
                    sinks.append(it)
            self._iters_indexed = len(iterations)
        return by_thread, sinks

    def _channel_index(self) -> Dict[str, List[ItemTrace]]:
        if len(self._item_seq) != len(self.items):
            # Items were inserted into the dict directly (trace_io does
            # this when rebuilding saved traces): resync the allocation
            # sequence and regroup from scratch.
            self._item_seq = list(self.items.values())
            self._by_channel = None
        by_channel = self._by_channel
        if by_channel is None:
            by_channel = {}
            self._by_channel = by_channel
            self._items_indexed = 0
        pos = self._items_indexed
        seq = self._item_seq
        if pos < len(seq):
            for item in seq[pos:]:
                bucket = by_channel.get(item.channel)
                if bucket is None:
                    by_channel[item.channel] = [item]
                else:
                    bucket.append(item)
            self._items_indexed = len(seq)
        return by_channel

    # -- convenience views ---------------------------------------------------
    def iterations_of(self, thread: str) -> List[IterationTrace]:
        """All iterations of ``thread``, in completion order (read-only)."""
        return self._iteration_index()[0].get(thread, _EMPTY_ITERS)

    def sink_iterations(self) -> List[IterationTrace]:
        """All sink iterations, in completion order (read-only)."""
        return self._iteration_index()[1]

    def items_of_channel(self, channel: str) -> List[ItemTrace]:
        """All items of ``channel``, in allocation order (read-only)."""
        return self._channel_index().get(channel, _EMPTY_ITEMS)

    def threads(self) -> List[str]:
        """Thread names in order of first recorded iteration."""
        return list(self._iteration_index()[0])

    def channels(self) -> List[str]:
        """Channel names in order of first allocation."""
        return list(self._channel_index())
