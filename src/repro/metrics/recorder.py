"""In-memory trace recorder wired into the runtime.

One :class:`TraceRecorder` instance per run. The runtime calls the
``on_*`` hooks; the analysis modules (:mod:`repro.metrics.footprint`,
:mod:`repro.metrics.performance`, :mod:`repro.metrics.postmortem`) read
the accumulated structures after :meth:`finalize`.

The recorder is deliberately dumb — it never aggregates during the run,
so recording cost stays O(1) per event and analysis choices stay open.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import TraceError
from repro.metrics.events import ItemTrace, IterationTrace, StpSample, Touch


class TraceRecorder:
    """Collects item and iteration traces for one simulation run."""

    def __init__(self, record_stp: bool = True) -> None:
        self.items: Dict[int, ItemTrace] = {}
        self.iterations: List[IterationTrace] = []
        self.stp_samples: List[StpSample] = []
        self.record_stp = record_stp
        self.t_start: float = 0.0
        self.t_end: Optional[float] = None
        self._iter_counters: Dict[str, int] = {}

    # -- item lifecycle ---------------------------------------------------
    def on_alloc(
        self,
        item_id: int,
        channel: str,
        node: str,
        ts: int,
        size: int,
        producer: str,
        parents: Tuple[int, ...],
        t: float,
    ) -> None:
        if item_id in self.items:
            raise TraceError(f"duplicate alloc for item {item_id}")
        self.items[item_id] = ItemTrace(
            item_id=item_id,
            channel=channel,
            node=node,
            ts=ts,
            size=size,
            producer=producer,
            parents=parents,
            t_alloc=t,
        )

    def on_get(self, item_id: int, conn_id: int, consumer: str, t: float) -> None:
        self._item(item_id).gets.append(Touch(conn_id, consumer, t))

    def on_skip(self, item_id: int, conn_id: int, consumer: str, t: float) -> None:
        self._item(item_id).skips.append(Touch(conn_id, consumer, t))

    def on_free(self, item_id: int, t: float) -> None:
        trace = self._item(item_id)
        if trace.t_free is not None:
            raise TraceError(f"double free of item {item_id}")
        if t < trace.t_alloc:
            raise TraceError(f"free before alloc for item {item_id}")
        trace.t_free = t

    def _item(self, item_id: int) -> ItemTrace:
        trace = self.items.get(item_id)
        if trace is None:
            raise TraceError(f"unknown item {item_id}")
        return trace

    # -- iterations ---------------------------------------------------------
    def on_iteration(
        self,
        thread: str,
        t_start: float,
        t_end: float,
        compute: float,
        blocked: float,
        slept: float,
        inputs: Tuple[int, ...],
        outputs: Tuple[int, ...],
        is_sink: bool = False,
    ) -> None:
        index = self._iter_counters.get(thread, 0)
        self._iter_counters[thread] = index + 1
        self.iterations.append(
            IterationTrace(
                thread=thread,
                index=index,
                t_start=t_start,
                t_end=t_end,
                compute=compute,
                blocked=blocked,
                slept=slept,
                inputs=inputs,
                outputs=outputs,
                is_sink=is_sink,
            )
        )

    def on_stp(
        self,
        thread: str,
        t: float,
        current_stp: float,
        summary: Optional[float],
        throttle_target: Optional[float],
        slept: float,
    ) -> None:
        if self.record_stp:
            self.stp_samples.append(
                StpSample(thread, t, current_stp, summary, throttle_target, slept)
            )

    # -- run boundary ----------------------------------------------------
    def finalize(self, t_end: float) -> None:
        """Close the trace at simulated time ``t_end``.

        Unfreed items stay unfreed (their lifetime extends to the horizon
        in footprint computations) — matching a real run snapshot.
        """
        if self.t_end is not None:
            raise TraceError("finalize() called twice")
        self.t_end = float(t_end)

    @property
    def duration(self) -> float:
        if self.t_end is None:
            raise TraceError("trace not finalized")
        return self.t_end - self.t_start

    # -- convenience views ---------------------------------------------------
    def iterations_of(self, thread: str) -> List[IterationTrace]:
        return [it for it in self.iterations if it.thread == thread]

    def sink_iterations(self) -> List[IterationTrace]:
        return [it for it in self.iterations if it.is_sink]

    def items_of_channel(self, channel: str) -> List[ItemTrace]:
        return [it for it in self.items.values() if it.channel == channel]

    def threads(self) -> List[str]:
        seen: Dict[str, None] = {}
        for it in self.iterations:
            seen.setdefault(it.thread, None)
        return list(seen)

    def channels(self) -> List[str]:
        seen: Dict[str, None] = {}
        for item in self.items.values():
            seen.setdefault(item.channel, None)
        return list(seen)
