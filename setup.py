"""Legacy setup shim.

Lets ``pip install -e . --no-build-isolation`` work in offline
environments that lack the ``wheel`` package (pip falls back to the
``setup.py develop`` code path). Configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
